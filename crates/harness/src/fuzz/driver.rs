//! The differential conformance driver: one fuzz case, every path.
//!
//! A case runs the same seeded traffic, under the same seeded
//! adversity, through every execution surface the repository claims is
//! equivalent:
//!
//! 1. the register-backed scalar reference (`build_switch`),
//! 2. the store program over the case's `FlowStore` choice,
//! 3. the sharded engine at 2 and at 4 workers,
//! 4. the cluster (when the case has one), oracle-checked every wave
//!    and across its join/leave/down schedule, and
//! 5. the discrete-event testbed with the case's NF chain.
//!
//! Paths 1-3 must agree *exactly* — delivered byte set, counters,
//! switch statistics, occupancy, fault tallies — and every path must
//! satisfy the conformance oracle. The scalar reference additionally
//! drives the adaptive-evictor implementation against the pure
//! [`PolicyModel`] each wave (on a detached threshold cell, so the
//! cross-check can never perturb the equivalence comparison).
//!
//! Before anything executes, the case is **statically pre-screened**:
//! `ParkConfig::validate`, `pp_verify::check_deployment`, the shard
//! plans the engine will use and the cluster plan all get a veto. A
//! rejected config is a [`CaseOutcome::Skipped`] — never executed, by
//! construction.

use super::config::{ClusterEvent, FuzzConfig, NfChoice, StoreChoice};
use super::model::PolicyModel;
use crate::testbed::{self, ChainSpec, DeployMode, ParkParams, TestbedConfig};
use payloadpark::flowstore::shared;
use payloadpark::program::build_switch;
use payloadpark::{
    build_store_switch, oracle, AdaptivePolicy, CircularStore, CounterSnapshot, ParkConfig,
    PipeControl, ShardPlan, SlabStore, StoreControl,
};
use pp_cluster::{Cluster, ClusterConfig, ClusterPlan, StoreKind};
use pp_fastpath::{adverse_return_wave, Engine, EngineConfig, SlicedTestbed};
use pp_netsim::adversity::{AdversityProfile, FaultTally};
use pp_netsim::time::SimDuration;
use pp_rmt::switch::{BatchPacket, SwitchOutput, SwitchStats};
use pp_trafficgen::gen::{GenConfig, SizeModel, TrafficGen, TrafficMix};
use pp_verify::{check_cluster_plan, check_deployment, check_shard_plan, Severity};
use std::sync::atomic::AtomicU16;
use std::sync::Arc;

/// Deliberate defects the harness can inject to prove it still catches
/// bugs (CI shrinks one of these and diffs the repro for determinism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bug {
    /// No injection: test the real code.
    None,
    /// Under-report the 4-worker engine's merge counter by one — a
    /// counter-equivalence defect that survives shrinking.
    EngineMergeSkew,
}

/// Aggregate facts about a passing case.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseStats {
    /// Split operations on the scalar reference.
    pub splits: u64,
    /// Merge operations on the scalar reference.
    pub merges: u64,
    /// Packets delivered to the sink on the scalar reference.
    pub delivered: usize,
    /// Whether the case exercised a cluster leg.
    pub cluster: bool,
}

/// What one case did.
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    /// The static pre-screen vetoed the config; nothing executed.
    Skipped {
        /// Which gate rejected it.
        reason: String,
    },
    /// Every path agreed and every oracle held.
    Pass(CaseStats),
    /// A divergence or oracle violation.
    Fail {
        /// What diverged, on which path.
        reason: String,
    },
}

impl CaseOutcome {
    /// True for [`CaseOutcome::Fail`].
    pub fn is_fail(&self) -> bool {
        matches!(self, CaseOutcome::Fail { .. })
    }
}

fn fail(reason: impl Into<String>) -> CaseOutcome {
    CaseOutcome::Fail { reason: reason.into() }
}

/// Statically pre-screens a case. `Err` is the skip reason; configs the
/// verifier rejects are never executed.
pub fn prescreen(cfg: &FuzzConfig) -> Result<ParkConfig, String> {
    let park = cfg.deployment();
    park.validate().map_err(|e| format!("config rejected: {e}"))?;
    let mut errors: Vec<String> = Vec::new();
    for report in check_deployment(&park) {
        for d in &report.diagnostics {
            if d.severity == Severity::Error {
                errors.push(format!("{}: {d}", report.program));
            }
        }
    }
    if !errors.is_empty() {
        return Err(format!("static verifier rejected deployment: {}", errors.join("; ")));
    }
    for workers in [2usize, 4] {
        let plan = ShardPlan::new(&park, workers)
            .map_err(|e| format!("shard plan ({workers} workers) rejected: {e}"))?;
        for d in check_shard_plan(&park, &plan) {
            if d.severity == Severity::Error {
                return Err(format!("shard plan ({workers} workers) rejected: {d}"));
            }
        }
    }
    if let Some(cl) = &cfg.cluster {
        let plan = ClusterPlan::new(&park, cl.switches, cl.seed)
            .map_err(|e| format!("cluster plan ({} switches) rejected: {e}", cl.switches))?;
        for d in check_cluster_plan(&park, &plan) {
            if d.severity == Severity::Error {
                return Err(format!("cluster plan ({} switches) rejected: {d}", cl.switches));
            }
        }
    }
    Ok(park)
}

/// The case's waves: `waves × packets` of the seeded enterprise mix,
/// dealt round-robin across the slices with server MACs stamped —
/// the same construction as `SlicedTestbed::counted_mixed_wave`, with
/// the TCP share as a case axis.
pub fn build_waves(cfg: &FuzzConfig) -> Vec<Vec<BatchPacket>> {
    let tb = cfg.testbed();
    let mix = if cfg.tcp_permille == 0 {
        TrafficMix::UdpOnly
    } else {
        TrafficMix::TcpUdp { tcp_fraction: f64::from(cfg.tcp_permille) / 1000.0 }
    };
    let mut gen = TrafficGen::new(GenConfig {
        rate_gbps: 4.0,
        sizes: SizeModel::Enterprise,
        mix,
        flows: 32,
        seed: cfg.wave_seed,
        ..Default::default()
    });
    let all: Vec<BatchPacket> = gen
        .take_count(cfg.waves * cfg.packets)
        .into_iter()
        .map(|(_, pkt)| {
            let seq = pkt.seq();
            let slice = (seq as usize) % tb.slices;
            let mut pkt = BatchPacket { bytes: pkt.into_bytes(), port: tb.split_port(slice), seq };
            tb.stamp_server_mac(&mut pkt);
            pkt
        })
        .collect();
    all.chunks(cfg.packets).map(<[BatchPacket]>::to_vec).collect()
}

/// Canonical delivered set: reordering legitimately permutes arrival
/// order, so paths compare sorted `(seq, bytes)` pairs.
fn canonical(outs: Vec<SwitchOutput>) -> Vec<(u64, Vec<u8>)> {
    let mut set: Vec<(u64, Vec<u8>)> = outs.into_iter().map(|o| (o.seq, o.bytes)).collect();
    set.sort();
    set
}

struct PathResult {
    delivered: Vec<(u64, Vec<u8>)>,
    counters: CounterSnapshot,
    stats: SwitchStats,
    occupancy: usize,
    tally: FaultTally,
}

/// Compares a path against the scalar reference; `Err` is the failure
/// reason.
fn diff_paths(kind: &str, reference: &PathResult, got: &PathResult) -> Result<(), String> {
    if got.tally != reference.tally {
        return Err(format!(
            "{kind}: fault tallies diverged (reference {:?}, got {:?})",
            reference.tally, got.tally
        ));
    }
    if got.counters != reference.counters {
        return Err(format!(
            "{kind}: counters diverged (reference {:?}, got {:?})",
            reference.counters, got.counters
        ));
    }
    if got.stats != reference.stats {
        return Err(format!("{kind}: switch statistics diverged"));
    }
    if got.occupancy != reference.occupancy {
        return Err(format!(
            "{kind}: occupancy diverged (reference {}, got {})",
            reference.occupancy, got.occupancy
        ));
    }
    if got.delivered.len() != reference.delivered.len() {
        return Err(format!(
            "{kind}: delivered count diverged (reference {}, got {})",
            reference.delivered.len(),
            got.delivered.len()
        ));
    }
    for (i, (g, r)) in got.delivered.iter().zip(&reference.delivered).enumerate() {
        if g != r {
            return Err(format!(
                "{kind}: delivered byte set diverged at entry {i} (reference seq {}, got seq {})",
                r.0, g.0
            ));
        }
    }
    Ok(())
}

/// Oracle checks common to every single-switch path.
fn check_path_oracle(kind: &str, cfg: &FuzzConfig, path: &PathResult) -> Result<(), String> {
    let mut report = oracle::check_counters(&path.counters, path.occupancy);
    // Corrupted payloads legitimately deliver broken checksums; every
    // other scenario must deliver parseable, checksum-clean packets.
    if cfg.adversity.corrupt_permille == 0 {
        report.merge(oracle::check_delivered(path.delivered.iter().map(|(_, b)| &b[..])));
    }
    if report.ok() {
        Ok(())
    } else {
        Err(format!("{kind}: oracle violated: {}", report.violations().join("; ")))
    }
}

/// The register-backed scalar reference, plus the per-wave counter
/// stream for the policy cross-check.
fn register_run(
    park: &ParkConfig,
    tb: &SlicedTestbed,
    waves: &[Vec<BatchPacket>],
    adv: &AdversityProfile,
) -> Result<(PathResult, Vec<CounterSnapshot>), String> {
    let (mut sw, handles) = build_switch(park).map_err(|e| format!("reference build: {e}"))?;
    tb.wire(&mut |mac, port| sw.l2_add(mac, port));
    let control = PipeControl::new(handles[0].clone());
    let mut tally = FaultTally::default();
    let mut delivered = Vec::new();
    let mut per_wave = Vec::new();
    for wave in waves {
        delivered.extend(sw_roundtrip(tb, &mut sw, wave, adv, &mut tally));
        per_wave.push(control.counters(&sw));
    }
    let result = PathResult {
        delivered: canonical(delivered),
        counters: control.counters(&sw),
        stats: sw.stats(),
        occupancy: control.occupancy(&sw),
        tally,
    };
    Ok((result, per_wave))
}

fn sw_roundtrip(
    tb: &SlicedTestbed,
    sw: &mut pp_rmt::SwitchModel,
    wave: &[BatchPacket],
    adv: &AdversityProfile,
    tally: &mut FaultTally,
) -> Vec<SwitchOutput> {
    tb.scalar_roundtrip_two_phase_adverse(sw, wave, adv, tally)
}

/// The store program over the case's `FlowStore` choice.
fn store_run(
    cfg: &FuzzConfig,
    park: &ParkConfig,
    tb: &SlicedTestbed,
    waves: &[Vec<BatchPacket>],
    adv: &AdversityProfile,
) -> Result<PathResult, String> {
    let total_slots = park.pipes[0].total_slots();
    let blocks = park.primary_blocks;
    let store = match cfg.store {
        StoreChoice::Circular => shared(CircularStore::new(total_slots, blocks)),
        StoreChoice::Slab => shared(SlabStore::new(total_slots, blocks)),
        StoreChoice::SlabSpill { hot_capacity } => {
            shared(SlabStore::with_spill(total_slots, blocks, hot_capacity))
        }
    };
    let (mut sw, control): (_, StoreControl) =
        build_store_switch(park, store).map_err(|e| format!("store build: {e}"))?;
    tb.wire(&mut |mac, port| sw.l2_add(mac, port));
    let mut tally = FaultTally::default();
    let mut delivered = Vec::new();
    for wave in waves {
        delivered.extend(sw_roundtrip(tb, &mut sw, wave, adv, &mut tally));
    }
    Ok(PathResult {
        delivered: canonical(delivered),
        counters: control.counters(&sw),
        stats: sw.stats(),
        occupancy: control.occupancy(),
        tally,
    })
}

/// The sharded engine at `workers`.
fn engine_run(
    park: &ParkConfig,
    tb: &SlicedTestbed,
    waves: &[Vec<BatchPacket>],
    adv: &AdversityProfile,
    workers: usize,
    bug: Bug,
) -> Result<PathResult, String> {
    let mut engine = Engine::new(park, EngineConfig { workers, batch: 32, ring_depth: 4 })
        .map_err(|e| format!("engine ({workers} workers) build: {e}"))?;
    tb.wire(&mut |mac, port| engine.l2_add(mac, port));
    let mut tally = FaultTally::default();
    let mut delivered = Vec::new();
    for wave in waves {
        let to_servers = engine.process(wave.clone());
        let outs = to_servers.to_seq_sorted().into_iter().map(BatchPacket::from).collect();
        let back = adverse_return_wave(adv, outs, tb.sink_mac(), &mut tally);
        delivered.extend(engine.process(back).to_seq_sorted());
    }
    let mut counters = engine.counters();
    if bug == Bug::EngineMergeSkew && workers == 4 {
        counters.merges = counters.merges.saturating_sub(1);
    }
    Ok(PathResult {
        delivered: canonical(delivered),
        counters,
        stats: engine.switch_stats(),
        occupancy: engine.occupancy(),
        tally,
    })
}

/// Steps the adaptive-evictor implementation and the pure model over
/// the reference path's per-wave counter stream. The implementation
/// runs on a detached threshold cell so the cross-check never touches
/// the dataplane under comparison.
fn policy_crosscheck(cfg: &FuzzConfig, per_wave: &[CounterSnapshot]) -> Result<(), String> {
    let adaptive = cfg.adaptive_config();
    let mut model = PolicyModel::new(cfg.expiry.min(adaptive.max_expiry).max(1), adaptive);
    let cell = Arc::new(AtomicU16::new(model.current()));
    let mut real = AdaptivePolicy::new(cell, adaptive);
    for (i, counters) in per_wave.iter().enumerate() {
        let want = model.observe(*counters);
        let got = real.observe(*counters);
        if want != got || model.adjustments() != real.adjustments() {
            return Err(format!(
                "adaptive policy diverged from model at wave {i}: \
                 model threshold {want} ({} adjustments), \
                 implementation {got} ({} adjustments)",
                model.adjustments(),
                real.adjustments()
            ));
        }
    }
    Ok(())
}

/// The cluster leg: same waves and adversity through an N-switch
/// cluster, the membership schedule applied one event per wave
/// boundary, the cluster-wide oracle checked after every step.
fn cluster_run(
    cfg: &FuzzConfig,
    park: &ParkConfig,
    tb: &SlicedTestbed,
    waves: &[Vec<BatchPacket>],
    adv: &AdversityProfile,
) -> Result<(), String> {
    let cl = cfg.cluster.as_ref().expect("cluster leg needs a cluster config");
    let store = match cfg.store {
        StoreChoice::Circular => StoreKind::Circular,
        StoreChoice::Slab => StoreKind::Slab,
        StoreChoice::SlabSpill { hot_capacity } => StoreKind::SlabSpill { hot_capacity },
    };
    let ccfg = ClusterConfig {
        switches: cl.switches,
        seed: cl.seed,
        store,
        link_gbps: 100.0,
        link_propagation: SimDuration::from_micros(1),
    };
    let mut cluster =
        Cluster::new(park, ccfg).map_err(|e| format!("cluster ({} switches): {e}", cl.switches))?;
    tb.wire(&mut |mac, port| cluster.l2_add(mac, port));

    let check = |cluster: &Cluster, when: &str| -> Result<(), String> {
        let report = cluster.check_oracle();
        if report.ok() {
            Ok(())
        } else {
            Err(format!(
                "cluster ({} switches) oracle violated {when}: {}",
                cl.switches,
                report.violations().join("; ")
            ))
        }
    };

    let mut tally = FaultTally::default();
    let mut down: Vec<u32> = Vec::new();
    for (w, wave) in waves.iter().enumerate() {
        cluster.roundtrip_adverse(wave, tb.sink_mac(), adv, &mut tally);
        check(&cluster, &format!("after wave {w}"))?;
        if let Some(event) = cl.schedule.get(w) {
            apply_event(&mut cluster, *event, &mut down)
                .map_err(|e| format!("cluster event {event:?} after wave {w}: {e}"))?;
            check(&cluster, &format!("after {event:?} (wave {w})"))?;
        }
    }
    // Internal gauge sanity: the spill tier never exceeds what is parked,
    // and only the spill store ever reports spilled payloads.
    let spilled = cluster.spilled();
    match cfg.store {
        StoreChoice::SlabSpill { .. } => {
            if spilled > cluster.occupancy() {
                return Err(format!(
                    "cluster spill gauge ({spilled}) exceeds occupancy ({})",
                    cluster.occupancy()
                ));
            }
        }
        _ => {
            if spilled != 0 {
                return Err(format!("non-spill store reports {spilled} spilled payloads"));
            }
        }
    }
    Ok(())
}

fn apply_event(
    cluster: &mut Cluster,
    event: ClusterEvent,
    down: &mut Vec<u32>,
) -> Result<(), String> {
    match event {
        ClusterEvent::Join => {
            cluster.join().map_err(|e| e.to_string())?;
        }
        ClusterEvent::Leave => {
            let ids = cluster.switch_ids();
            let alive = ids.len();
            if alive > 1 {
                let id = *ids.iter().max().expect("non-empty cluster");
                cluster.leave(id).map_err(|e| e.to_string())?;
                down.retain(|d| *d != id);
            }
        }
        ClusterEvent::Down => {
            let ids = cluster.switch_ids();
            if let Some(id) = ids.iter().find(|id| !down.contains(id)) {
                cluster.set_down(*id, true);
                down.push(*id);
            }
        }
    }
    Ok(())
}

/// The discrete-event leg: the case's NF chain, traffic mix and
/// adversity through the full Fig. 5 testbed, requiring a clean oracle.
fn des_run(cfg: &FuzzConfig) -> Result<(), String> {
    let chain = match cfg.nf {
        NfChoice::MacSwap => ChainSpec::MacSwap,
        NfChoice::Firewall => ChainSpec::Firewall { rules: 8 },
        NfChoice::Nat => ChainSpec::Nat,
        NfChoice::FwNat => ChainSpec::FwNat { fw_rules: 1 },
        NfChoice::FwNatLb => ChainSpec::FwNatLb { fw_rules: 20 },
    };
    let mix = if cfg.tcp_permille == 0 {
        TrafficMix::UdpOnly
    } else {
        TrafficMix::TcpUdp { tcp_fraction: f64::from(cfg.tcp_permille) / 1000.0 }
    };
    let des = TestbedConfig {
        mix,
        duration: SimDuration::from_micros(cfg.des.duration_us),
        chain,
        flows: 32,
        seed: cfg.wave_seed,
        mode: DeployMode::PayloadPark(ParkParams {
            sram_fraction: f64::from(cfg.des.sram_permille) / 1000.0,
            expiry: cfg.expiry,
            recirculation: false,
            explicit_drop: cfg.des.explicit_drop,
        }),
        adversity: cfg.adversity_profile(),
        ..TestbedConfig::default()
    };
    let report = testbed::run(&des);
    if report.oracle_violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "discrete-event leg ({:?}) oracle violated: {}",
            cfg.nf,
            report.oracle_violations.join("; ")
        ))
    }
}

/// Runs one case end to end. See the module docs for what is compared.
pub fn run_case(cfg: &FuzzConfig, bug: Bug) -> CaseOutcome {
    let park = match prescreen(cfg) {
        Ok(park) => park,
        Err(reason) => return CaseOutcome::Skipped { reason },
    };
    let tb = cfg.testbed();
    let adv = cfg.adversity_profile();
    let waves = build_waves(cfg);

    let (reference, per_wave) = match register_run(&park, &tb, &waves, &adv) {
        Ok(r) => r,
        Err(e) => return fail(e),
    };
    if let Err(e) = check_path_oracle("reference", cfg, &reference) {
        return fail(e);
    }
    if let Err(e) = policy_crosscheck(cfg, &per_wave) {
        return fail(e);
    }

    let store_kind = format!("store ({:?})", cfg.store);
    match store_run(cfg, &park, &tb, &waves, &adv) {
        Ok(path) => {
            if let Err(e) = diff_paths(&store_kind, &reference, &path)
                .and_then(|()| check_path_oracle(&store_kind, cfg, &path))
            {
                return fail(e);
            }
        }
        Err(e) => return fail(e),
    }

    for workers in [2usize, 4] {
        let kind = format!("engine ({workers} workers)");
        match engine_run(&park, &tb, &waves, &adv, workers, bug) {
            Ok(path) => {
                if let Err(e) = diff_paths(&kind, &reference, &path)
                    .and_then(|()| check_path_oracle(&kind, cfg, &path))
                {
                    return fail(e);
                }
            }
            Err(e) => return fail(e),
        }
    }

    if cfg.cluster.is_some() {
        if let Err(e) = cluster_run(cfg, &park, &tb, &waves, &adv) {
            return fail(e);
        }
    }

    if let Err(e) = des_run(cfg) {
        return fail(e);
    }

    CaseOutcome::Pass(CaseStats {
        splits: reference.counters.splits,
        merges: reference.counters.merges,
        delivered: reference.delivered.len(),
        cluster: cfg.cluster.is_some(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An oversized table must be vetoed by the pre-screen, not run.
    #[test]
    fn oversized_tables_are_skipped() {
        let mut cfg = FuzzConfig::generate(0);
        cfg.slots = 8192;
        match run_case(&cfg, Bug::None) {
            CaseOutcome::Skipped { reason } => {
                assert!(reason.contains("rejected"), "unexpected reason: {reason}");
            }
            other => panic!("expected a skip, got {other:?}"),
        }
    }

    /// A small known-good case passes every path.
    #[test]
    fn small_case_is_conformant() {
        let mut cfg = FuzzConfig::generate(1);
        cfg.slices = 4;
        cfg.slots = 48;
        cfg.waves = 1;
        cfg.packets = 40;
        cfg.cluster = None;
        match run_case(&cfg, Bug::None) {
            CaseOutcome::Pass(stats) => assert!(stats.splits > 0, "workload must park"),
            other => panic!("expected a pass, got {other:?}"),
        }
    }

    /// The injected engine-counter bug is detected as a counter
    /// divergence on the 4-worker path.
    #[test]
    fn injected_bug_is_detected() {
        let mut cfg = FuzzConfig::generate(1);
        cfg.slices = 4;
        cfg.slots = 48;
        cfg.waves = 1;
        cfg.packets = 40;
        cfg.cluster = None;
        match run_case(&cfg, Bug::EngineMergeSkew) {
            CaseOutcome::Fail { reason } => {
                assert!(reason.contains("engine (4 workers)"), "wrong path: {reason}");
                assert!(reason.contains("counters diverged"), "wrong defect: {reason}");
            }
            other => panic!("expected a failure, got {other:?}"),
        }
    }
}
