//! Seed-derived fuzz cases: one `u64` describes a whole deployment.
//!
//! [`FuzzConfig::generate`] expands a case seed into every axis the
//! differential driver varies — deployment geometry (slices, slots,
//! expiry), the park-table implementation, an optional cluster with a
//! join/leave/down schedule, the DES-leg NF chain, a seeded adversity
//! profile and the traffic shape. The expansion is a pure function of
//! the seed (via [`DetRng::derive`]), so a failing case replays from its
//! seed alone; the shrinker then mutates the expanded config directly,
//! which is why the config also round-trips through JSON **exactly**
//! (integers only, [`payloadpark::jsonio`] raw tokens — a repro file is
//! byte-stable across parse → render).
//!
//! Some generated configs are deliberately invalid (oversized slot
//! counts that blow the pipe's SRAM budget): the driver's static
//! pre-screen must reject those without executing them, and the fuzzer
//! counts them as skips — that path is itself under test.

use payloadpark::jsonio::{self, obj, Value};
use payloadpark::{AdaptiveConfig, ParkConfig};
use pp_fastpath::SlicedTestbed;
use pp_netsim::adversity::{AdversityProfile, LegProfile, SeqWindow};
use pp_netsim::rng::DetRng;

/// Smallest per-wave packet count the generator (and shrinker) will go
/// to: enough traffic that a parking deployment actually parks.
pub const MIN_PACKETS: usize = 8;

/// Which `FlowStore` implementation backs the store-program path (and
/// the cluster switches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreChoice {
    /// Dense register-file circular buffers.
    Circular,
    /// Sparse generational slab.
    Slab,
    /// Slab with a bounded hot tier; older parked payloads demote to
    /// the spill map.
    SlabSpill {
        /// Hot-tier payload capacity.
        hot_capacity: usize,
    },
}

/// NF chain selection for the discrete-event leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NfChoice {
    MacSwap,
    Firewall,
    Nat,
    FwNat,
    FwNatLb,
}

/// One membership/health event applied between waves on the cluster leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A fresh switch joins the ring (slices migrate to it).
    Join,
    /// The highest-id switch leaves (its slices and parked flows migrate
    /// to the survivors). Skipped when only one switch remains.
    Leave,
    /// The lowest-id live switch goes dark (merge arrivals for it are
    /// charged at its front panel).
    Down,
}

/// Cluster-leg knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterFuzz {
    /// Switches at build time (ids `0..switches`).
    pub switches: usize,
    /// Consistent-hash ring seed.
    pub seed: u64,
    /// Events applied one per wave boundary, in order.
    pub schedule: Vec<ClusterEvent>,
}

/// Seeded adversity knobs, all integral so the config JSON-round-trips
/// exactly (the profile converts per-mille to probabilities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversityKnobs {
    /// Scenario seed for every per-packet fault decision.
    pub seed: u64,
    /// Loss on the switch → NF leg, per mille.
    pub to_nf_drop_permille: u16,
    /// Loss on the NF → switch leg, per mille.
    pub drop_permille: u16,
    /// Duplication on the return leg, per mille.
    pub duplicate_permille: u16,
    /// Tail truncation on the return leg, per mille.
    pub truncate_permille: u16,
    /// Single-bit corruption on the return leg, per mille.
    pub corrupt_permille: u16,
    /// Reordering on the return leg, per mille.
    pub reorder_permille: u16,
    /// Largest displacement `reorder` may apply.
    pub max_displacement: u64,
    /// Optional scripted blackout window `[from, to)` of generator
    /// sequence numbers, dropped on the return leg.
    pub blackout: Option<(u64, u64)>,
}

/// Adaptive-evictor knobs (the driver cross-checks the implementation
/// against a pure model under these).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyKnobs {
    /// Upper clamp for the threshold walk.
    pub max_expiry: u16,
    /// Premature evictions tolerated per interval before raising.
    pub premature_tolerance: u64,
    /// Occupied-refusals tolerated per interval before lowering.
    pub occupied_tolerance: u64,
}

/// Discrete-event-leg knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesKnobs {
    /// Traffic window in microseconds.
    pub duration_us: u64,
    /// Lookup-table SRAM fraction, per mille.
    pub sram_permille: u16,
    /// NF framework sends Explicit-Drop notifications.
    pub explicit_drop: bool,
}

/// Everything one fuzz case varies. See the module docs for how a case
/// is produced and consumed.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzConfig {
    /// The case seed this config was generated from (provenance only;
    /// the shrinker mutates the other fields and keeps the seed).
    pub seed: u64,
    /// Memory slices (= NF servers); engine workers must divide this.
    pub slices: usize,
    /// Lookup-table slots per slice.
    pub slots: usize,
    /// Expiry threshold (`MAX_EXP`).
    pub expiry: u16,
    /// Park-table implementation for the store-program path.
    pub store: StoreChoice,
    /// TCP share of the generated flows, per mille.
    pub tcp_permille: u16,
    /// Split → adverse legs → Merge waves per case.
    pub waves: usize,
    /// Packets per wave.
    pub packets: usize,
    /// Traffic generator seed.
    pub wave_seed: u64,
    /// Seeded misfortune on the internal legs.
    pub adversity: AdversityKnobs,
    /// Adaptive-evictor model parameters.
    pub policy: PolicyKnobs,
    /// Optional cluster leg.
    pub cluster: Option<ClusterFuzz>,
    /// NF chain on the discrete-event leg.
    pub nf: NfChoice,
    /// Discrete-event leg parameters.
    pub des: DesKnobs,
}

fn permille(p: u16) -> f64 {
    f64::from(p) / 1000.0
}

impl FuzzConfig {
    /// Expands `seed` into a full case (pure function of the seed).
    pub fn generate(seed: u64) -> FuzzConfig {
        let mut rng = DetRng::derive(seed, "pp-fuzz/config");
        let slices = if rng.chance(0.5) { 4 } else { 8 };
        // Mostly runnable table sizes; the last bucket blows the pipe's
        // SRAM budget so the static pre-screen must reject it.
        let slots = match rng.gen_range(0, 8) {
            0 => 8,
            1 => 16,
            2 => 24,
            3 => 48,
            4 => 96,
            5 => 256,
            6 => 512,
            _ => 8192,
        };
        let expiry = rng.gen_range(1, 11) as u16;
        let store = match rng.gen_range(0, 3) {
            0 => StoreChoice::Circular,
            1 => StoreChoice::Slab,
            _ => StoreChoice::SlabSpill { hot_capacity: 4 + rng.gen_range(0, 29) as usize },
        };
        let tcp_permille = rng.gen_range(0, 1001) as u16;
        let waves = 1 + rng.gen_range(0, 3) as usize;
        let packets = MIN_PACKETS + rng.gen_range(0, 193) as usize;
        let wave_seed = rng.next_u64();

        let adversity = AdversityKnobs {
            seed: rng.next_u64(),
            to_nf_drop_permille: if rng.chance(0.3) { rng.gen_range(1, 81) as u16 } else { 0 },
            drop_permille: if rng.chance(0.5) { rng.gen_range(1, 151) as u16 } else { 0 },
            duplicate_permille: if rng.chance(0.4) { rng.gen_range(1, 151) as u16 } else { 0 },
            truncate_permille: if rng.chance(0.3) { rng.gen_range(1, 151) as u16 } else { 0 },
            corrupt_permille: if rng.chance(0.25) { rng.gen_range(1, 201) as u16 } else { 0 },
            reorder_permille: if rng.chance(0.5) { rng.gen_range(1, 401) as u16 } else { 0 },
            max_displacement: 8 + rng.gen_range(0, 41),
            blackout: if rng.chance(0.25) {
                let total = (waves * packets) as u64;
                let from = rng.gen_range(0, total.max(2) - 1);
                let to = from + 1 + rng.gen_range(0, (total - from).max(2) - 1).min(80);
                Some((from, to))
            } else {
                None
            },
        };

        let policy = PolicyKnobs {
            max_expiry: rng.gen_range(2, 11) as u16,
            premature_tolerance: rng.gen_range(0, 5),
            occupied_tolerance: rng.gen_range(0, 129),
        };

        let cluster = if rng.chance(0.35) {
            let switches = 2 + rng.gen_range(0, 3) as usize;
            let cseed = rng.gen_range(0, 64);
            let events = if waves > 1 { rng.gen_range(0, 3) as usize } else { 0 };
            let schedule = (0..events)
                .map(|_| match rng.gen_range(0, 3) {
                    0 => ClusterEvent::Join,
                    1 => ClusterEvent::Leave,
                    _ => ClusterEvent::Down,
                })
                .collect();
            Some(ClusterFuzz { switches, seed: cseed, schedule })
        } else {
            None
        };

        let nf = match rng.gen_range(0, 5) {
            0 => NfChoice::MacSwap,
            1 => NfChoice::Firewall,
            2 => NfChoice::Nat,
            3 => NfChoice::FwNat,
            _ => NfChoice::FwNatLb,
        };

        let des = DesKnobs {
            duration_us: 400 + rng.gen_range(0, 1201),
            sram_permille: 40 + rng.gen_range(0, 261) as u16,
            explicit_drop: rng.chance(0.3),
        };

        FuzzConfig {
            seed,
            slices,
            slots,
            expiry,
            store,
            tcp_permille,
            waves,
            packets,
            wave_seed,
            adversity,
            policy,
            cluster,
            nf,
            des,
        }
    }

    /// The sliced testbed geometry this case deploys.
    pub fn testbed(&self) -> SlicedTestbed {
        SlicedTestbed::new(self.slices, self.slots)
    }

    /// The deployment configuration (testbed geometry + this case's
    /// expiry threshold) every execution path is built from.
    pub fn deployment(&self) -> ParkConfig {
        let mut cfg = self.testbed().config();
        cfg.expiry_threshold = self.expiry;
        cfg
    }

    /// The adversity profile, per-mille knobs converted to probabilities.
    pub fn adversity_profile(&self) -> AdversityProfile {
        let k = &self.adversity;
        AdversityProfile {
            seed: k.seed,
            to_nf: LegProfile { drop: permille(k.to_nf_drop_permille), ..Default::default() },
            from_nf: LegProfile {
                drop: permille(k.drop_permille),
                duplicate: permille(k.duplicate_permille),
                truncate: permille(k.truncate_permille),
                corrupt: permille(k.corrupt_permille),
                reorder: permille(k.reorder_permille),
                max_displacement: k.max_displacement,
                blackouts: k
                    .blackout
                    .map(|(from, to)| vec![SeqWindow { from, to }])
                    .unwrap_or_default(),
                ..Default::default()
            },
        }
    }

    /// The adaptive-evictor configuration under test.
    pub fn adaptive_config(&self) -> AdaptiveConfig {
        AdaptiveConfig {
            min_expiry: 1,
            max_expiry: self.policy.max_expiry,
            premature_tolerance: self.policy.premature_tolerance,
            occupied_tolerance: self.policy.occupied_tolerance,
        }
    }

    /// Serializes the config as a deterministic JSON value.
    pub fn to_json_value(&self) -> Value {
        let store = match self.store {
            StoreChoice::Circular => obj(vec![("kind", Value::str("circular"))]),
            StoreChoice::Slab => obj(vec![("kind", Value::str("slab"))]),
            StoreChoice::SlabSpill { hot_capacity } => obj(vec![
                ("kind", Value::str("slab_spill")),
                ("hot_capacity", Value::num(hot_capacity)),
            ]),
        };
        let a = &self.adversity;
        let adversity = obj(vec![
            ("seed", Value::num(a.seed)),
            ("to_nf_drop_permille", Value::num(a.to_nf_drop_permille)),
            ("drop_permille", Value::num(a.drop_permille)),
            ("duplicate_permille", Value::num(a.duplicate_permille)),
            ("truncate_permille", Value::num(a.truncate_permille)),
            ("corrupt_permille", Value::num(a.corrupt_permille)),
            ("reorder_permille", Value::num(a.reorder_permille)),
            ("max_displacement", Value::num(a.max_displacement)),
            ("blackout", a.blackout.map_or(Value::Null, |(from, to)| jsonio::num_arr([from, to]))),
        ]);
        let policy = obj(vec![
            ("max_expiry", Value::num(self.policy.max_expiry)),
            ("premature_tolerance", Value::num(self.policy.premature_tolerance)),
            ("occupied_tolerance", Value::num(self.policy.occupied_tolerance)),
        ]);
        let cluster = self.cluster.as_ref().map_or(Value::Null, |c| {
            obj(vec![
                ("switches", Value::num(c.switches)),
                ("seed", Value::num(c.seed)),
                (
                    "schedule",
                    Value::Arr(
                        c.schedule
                            .iter()
                            .map(|e| {
                                Value::str(match e {
                                    ClusterEvent::Join => "join",
                                    ClusterEvent::Leave => "leave",
                                    ClusterEvent::Down => "down",
                                })
                            })
                            .collect(),
                    ),
                ),
            ])
        });
        let nf = Value::str(match self.nf {
            NfChoice::MacSwap => "mac_swap",
            NfChoice::Firewall => "firewall",
            NfChoice::Nat => "nat",
            NfChoice::FwNat => "fw_nat",
            NfChoice::FwNatLb => "fw_nat_lb",
        });
        let des = obj(vec![
            ("duration_us", Value::num(self.des.duration_us)),
            ("sram_permille", Value::num(self.des.sram_permille)),
            ("explicit_drop", Value::Bool(self.des.explicit_drop)),
        ]);
        obj(vec![
            ("seed", Value::num(self.seed)),
            ("slices", Value::num(self.slices)),
            ("slots", Value::num(self.slots)),
            ("expiry", Value::num(self.expiry)),
            ("store", store),
            ("tcp_permille", Value::num(self.tcp_permille)),
            ("waves", Value::num(self.waves)),
            ("packets", Value::num(self.packets)),
            ("wave_seed", Value::num(self.wave_seed)),
            ("adversity", adversity),
            ("policy", policy),
            ("cluster", cluster),
            ("nf", nf),
            ("des", des),
        ])
    }

    /// Deserializes a config from a JSON value.
    pub fn from_json_value(v: &Value) -> Result<FuzzConfig, String> {
        fn need_u64(v: &Value, key: &str) -> Result<u64, String> {
            v.get(key).and_then(Value::as_u64).ok_or_else(|| format!("missing/invalid {key:?}"))
        }
        fn need_usize(v: &Value, key: &str) -> Result<usize, String> {
            v.get(key).and_then(Value::as_usize).ok_or_else(|| format!("missing/invalid {key:?}"))
        }
        fn need_u16(v: &Value, key: &str) -> Result<u16, String> {
            v.get(key).and_then(Value::as_u16).ok_or_else(|| format!("missing/invalid {key:?}"))
        }

        let store_v = v.get("store").ok_or("missing \"store\"")?;
        let store = match store_v.get("kind").and_then(Value::as_str) {
            Some("circular") => StoreChoice::Circular,
            Some("slab") => StoreChoice::Slab,
            Some("slab_spill") => {
                StoreChoice::SlabSpill { hot_capacity: need_usize(store_v, "hot_capacity")? }
            }
            other => return Err(format!("unknown store kind {other:?}")),
        };

        let a = v.get("adversity").ok_or("missing \"adversity\"")?;
        let blackout = match a.get("blackout") {
            None | Some(Value::Null) => None,
            Some(Value::Arr(items)) if items.len() == 2 => {
                let from = items[0].as_u64().ok_or("invalid blackout.from")?;
                let to = items[1].as_u64().ok_or("invalid blackout.to")?;
                Some((from, to))
            }
            Some(_) => return Err("blackout must be null or [from,to]".into()),
        };
        let adversity = AdversityKnobs {
            seed: need_u64(a, "seed")?,
            to_nf_drop_permille: need_u16(a, "to_nf_drop_permille")?,
            drop_permille: need_u16(a, "drop_permille")?,
            duplicate_permille: need_u16(a, "duplicate_permille")?,
            truncate_permille: need_u16(a, "truncate_permille")?,
            corrupt_permille: need_u16(a, "corrupt_permille")?,
            reorder_permille: need_u16(a, "reorder_permille")?,
            max_displacement: need_u64(a, "max_displacement")?,
            blackout,
        };

        let p = v.get("policy").ok_or("missing \"policy\"")?;
        let policy = PolicyKnobs {
            max_expiry: need_u16(p, "max_expiry")?,
            premature_tolerance: need_u64(p, "premature_tolerance")?,
            occupied_tolerance: need_u64(p, "occupied_tolerance")?,
        };

        let cluster = match v.get("cluster") {
            None | Some(Value::Null) => None,
            Some(c) => {
                let schedule = c
                    .get("schedule")
                    .and_then(Value::as_arr)
                    .ok_or("missing cluster.schedule")?
                    .iter()
                    .map(|e| match e.as_str() {
                        Some("join") => Ok(ClusterEvent::Join),
                        Some("leave") => Ok(ClusterEvent::Leave),
                        Some("down") => Ok(ClusterEvent::Down),
                        other => Err(format!("unknown cluster event {other:?}")),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Some(ClusterFuzz {
                    switches: need_usize(c, "switches")?,
                    seed: need_u64(c, "seed")?,
                    schedule,
                })
            }
        };

        let nf = match v.get("nf").and_then(Value::as_str) {
            Some("mac_swap") => NfChoice::MacSwap,
            Some("firewall") => NfChoice::Firewall,
            Some("nat") => NfChoice::Nat,
            Some("fw_nat") => NfChoice::FwNat,
            Some("fw_nat_lb") => NfChoice::FwNatLb,
            other => return Err(format!("unknown nf {other:?}")),
        };

        let d = v.get("des").ok_or("missing \"des\"")?;
        let des = DesKnobs {
            duration_us: need_u64(d, "duration_us")?,
            sram_permille: need_u16(d, "sram_permille")?,
            explicit_drop: d
                .get("explicit_drop")
                .and_then(Value::as_bool)
                .ok_or("missing des.explicit_drop")?,
        };

        Ok(FuzzConfig {
            seed: need_u64(v, "seed")?,
            slices: need_usize(v, "slices")?,
            slots: need_usize(v, "slots")?,
            expiry: need_u16(v, "expiry")?,
            store,
            tcp_permille: need_u16(v, "tcp_permille")?,
            waves: need_usize(v, "waves")?,
            packets: need_usize(v, "packets")?,
            wave_seed: need_u64(v, "wave_seed")?,
            adversity,
            policy,
            cluster,
            nf,
            des,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_varied() {
        for seed in 0..64u64 {
            assert_eq!(FuzzConfig::generate(seed), FuzzConfig::generate(seed), "seed {seed}");
        }
        let stores: std::collections::HashSet<_> =
            (0..64u64).map(|s| format!("{:?}", FuzzConfig::generate(s).store)).collect();
        assert!(stores.len() >= 3, "store axis never varies: {stores:?}");
        assert!((0..64u64).any(|s| FuzzConfig::generate(s).cluster.is_some()));
        assert!((0..64u64).any(|s| FuzzConfig::generate(s).cluster.is_none()));
        assert!((0..64u64).any(|s| FuzzConfig::generate(s).slots > 4096), "no oversized configs");
    }

    #[test]
    fn json_round_trip_is_exact() {
        for seed in [0u64, 1, 7, 42, u64::MAX] {
            let cfg = FuzzConfig::generate(seed);
            let text = cfg.to_json_value().render();
            let back =
                FuzzConfig::from_json_value(&jsonio::parse(&text).expect("parses")).expect("loads");
            assert_eq!(back, cfg, "seed {seed}");
            // Deterministic rendering: a reload renders byte-identically.
            assert_eq!(back.to_json_value().render(), text, "seed {seed}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let cfg = FuzzConfig::generate(3);
        let mut v = cfg.to_json_value();
        if let Value::Obj(fields) = &mut v {
            fields.retain(|(k, _)| k != "policy");
        }
        assert!(FuzzConfig::from_json_value(&v).unwrap_err().contains("policy"));
        let garbage = jsonio::parse("{\"store\":{\"kind\":\"quantum\"}}").unwrap();
        assert!(FuzzConfig::from_json_value(&garbage).unwrap_err().contains("store"));
    }

    #[test]
    fn deployment_reflects_the_case_axes() {
        let mut cfg = FuzzConfig::generate(5);
        cfg.slices = 4;
        cfg.slots = 48;
        cfg.expiry = 7;
        let park = cfg.deployment();
        assert_eq!(park.expiry_threshold, 7);
        assert_eq!(park.pipes[0].slices.len(), 4);
        assert_eq!(park.pipes[0].total_slots(), 4 * 48);
        park.validate().expect("runnable geometry");
    }
}
