//! A pure model of the adaptive evictor's control loop.
//!
//! [`payloadpark::AdaptivePolicy`] walks the expiry threshold from
//! per-interval *deltas* of two counters: premature evictions raise it
//! (toward `max_expiry`), occupied-refusals without premature evictions
//! lower it (toward `min_expiry`), premature wins when both fire. This
//! module restates that state machine as plain data — no atomics, no
//! shared threshold — and the fuzz driver steps both against the same
//! counter stream every wave, failing a case the moment the
//! implementation and the model disagree on the threshold or on how
//! many adjustments were made.

use payloadpark::{AdaptiveConfig, CounterSnapshot};

/// The reference state machine. Mirrors `AdaptivePolicy::observe`
/// field-for-field; see the module docs for the cross-check contract.
#[derive(Debug, Clone)]
pub struct PolicyModel {
    config: AdaptiveConfig,
    current: u16,
    last: CounterSnapshot,
    adjustments: u64,
}

impl PolicyModel {
    /// A model starting at `expiry` under `config`.
    pub fn new(expiry: u16, config: AdaptiveConfig) -> PolicyModel {
        PolicyModel { config, current: expiry, last: CounterSnapshot::default(), adjustments: 0 }
    }

    /// The threshold the model currently holds.
    pub fn current(&self) -> u16 {
        self.current
    }

    /// Threshold changes so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Feeds one interval's cumulative counters; returns the new
    /// threshold. Deltas are taken against the previous observation,
    /// exactly like the implementation.
    pub fn observe(&mut self, now: CounterSnapshot) -> u16 {
        let premature = now.premature_evictions.saturating_sub(self.last.premature_evictions);
        let occupied = now.disabled_occupied.saturating_sub(self.last.disabled_occupied);
        self.last = now;

        let next = if premature > self.config.premature_tolerance {
            self.current.saturating_add(1).min(self.config.max_expiry)
        } else if occupied > self.config.occupied_tolerance {
            self.current.saturating_sub(1).max(self.config.min_expiry)
        } else {
            self.current
        };
        if next != self.current {
            self.adjustments += 1;
            self.current = next;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payloadpark::AdaptivePolicy;
    use std::sync::atomic::AtomicU16;
    use std::sync::Arc;

    fn snapshot(premature: u64, occupied: u64) -> CounterSnapshot {
        CounterSnapshot {
            premature_evictions: premature,
            disabled_occupied: occupied,
            ..Default::default()
        }
    }

    /// The model tracks the real policy step-for-step across a counter
    /// stream that exercises raise, lower, clamp and both-fire cases.
    #[test]
    fn model_matches_implementation() {
        let config = AdaptiveConfig {
            min_expiry: 1,
            max_expiry: 4,
            premature_tolerance: 1,
            occupied_tolerance: 2,
        };
        let mut model = PolicyModel::new(2, config);
        let mut real = AdaptivePolicy::new(Arc::new(AtomicU16::new(2)), config);
        let stream = [
            snapshot(0, 0),
            snapshot(5, 0),    // raise
            snapshot(9, 0),    // raise
            snapshot(9, 20),   // lower
            snapshot(9, 21),   // delta 1 <= tolerance: hold
            snapshot(30, 40),  // both fire: premature wins
            snapshot(60, 40),  // raise to clamp
            snapshot(100, 40), // clamped: no adjustment counted
        ];
        for (i, s) in stream.into_iter().enumerate() {
            assert_eq!(model.observe(s), real.observe(s), "step {i}");
            assert_eq!(model.current(), real.current(), "step {i}");
            assert_eq!(model.adjustments(), real.adjustments(), "step {i}");
        }
        assert_eq!(model.current(), 4);
    }
}
