//! The `pp-fuzz` command-line surface.
//!
//! Strict like `pp-exp` and `pp-lint`: unknown flags and malformed
//! values are errors (exit 2 in the binary), the logic lives here in
//! the library so the regression tests drive the exact code the binary
//! runs, and the binary exits 1 when any case fails.
//!
//! * `pp-fuzz run` — a seeded batch: generate, pre-screen, execute,
//!   shrink failures, write repros (`--corpus DIR`).
//! * `pp-fuzz replay FILE...` — re-execute repro files.
//! * `pp-fuzz corpus [DIR]` — replay a whole pinned-regression
//!   directory (default `corpus/`), the CI gate.

use super::config::FuzzConfig;
use super::corpus::{self, Repro};
use super::driver::{run_case, Bug, CaseOutcome};
use super::shrink::shrink;
use std::path::Path;

/// Iterations `--quick` runs (small enough for every CI push).
pub const QUICK_ITERS: usize = 6;
/// Default iterations for a plain `pp-fuzz run`.
pub const DEFAULT_ITERS: usize = 24;
/// Default base seed.
pub const DEFAULT_SEED: u64 = 42;
/// Default pinned-regression directory.
pub const DEFAULT_CORPUS: &str = "corpus";
/// Shrink evaluation budget per failure.
pub const SHRINK_BUDGET: usize = 200;

/// A parsed `pp-fuzz` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzCli {
    /// `pp-fuzz run`.
    Run {
        /// Base seed; case `i` uses `seed + i`.
        seed: u64,
        /// Cases to run.
        iters: usize,
        /// Write repros for shrunk failures here.
        corpus: Option<String>,
        /// Inject the deliberate engine-counter bug (self-test).
        inject_bug: bool,
    },
    /// `pp-fuzz replay FILE...`.
    Replay {
        /// Repro files, replayed in order.
        files: Vec<String>,
    },
    /// `pp-fuzz corpus [DIR]`.
    Corpus {
        /// Directory of pinned repros.
        dir: String,
    },
}

/// The usage string printed alongside any parse error (exit code 2).
pub fn usage() -> String {
    "usage: pp-fuzz run [--seed N] [--iters N] [--quick] [--corpus DIR] [--inject-bug]\n\
     \u{20}      pp-fuzz replay FILE...\n\
     \u{20}      pp-fuzz corpus [DIR]"
        .into()
}

/// Parses the arguments after the program name. Strict: unknown flags,
/// missing values and malformed numbers are errors.
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<FuzzCli, String> {
    let mut it = args.iter().map(AsRef::as_ref);
    match it.next() {
        Some("run") => {
            let rest: Vec<&str> = it.collect();
            let mut seed: Option<u64> = None;
            let mut iters: Option<usize> = None;
            let mut quick = false;
            let mut corpus = None;
            let mut inject_bug = false;
            let mut i = 0;
            while i < rest.len() {
                let arg = rest[i];
                let mut value = |name: &str| -> Result<&str, String> {
                    i += 1;
                    rest.get(i).copied().ok_or_else(|| format!("{name} requires a value"))
                };
                match arg {
                    "--seed" => {
                        let v = value("--seed")?;
                        seed = Some(v.parse().map_err(|_| format!("invalid seed {v:?}"))?);
                    }
                    "--iters" => {
                        let v = value("--iters")?;
                        let n: usize = v.parse().map_err(|_| format!("invalid iters {v:?}"))?;
                        if n == 0 {
                            return Err("--iters must be >= 1".into());
                        }
                        iters = Some(n);
                    }
                    "--quick" => quick = true,
                    "--corpus" => corpus = Some(value("--corpus")?.to_string()),
                    "--inject-bug" => inject_bug = true,
                    other => return Err(format!("unknown flag {other:?}")),
                }
                i += 1;
            }
            Ok(FuzzCli::Run {
                seed: seed.unwrap_or(DEFAULT_SEED),
                iters: iters.unwrap_or(if quick { QUICK_ITERS } else { DEFAULT_ITERS }),
                corpus,
                inject_bug,
            })
        }
        Some("replay") => {
            let files: Vec<String> = it.map(str::to_owned).collect();
            if files.is_empty() {
                return Err("replay requires at least one repro file".into());
            }
            if let Some(flag) = files.iter().find(|f| f.starts_with('-')) {
                return Err(format!("unknown flag {flag:?}"));
            }
            Ok(FuzzCli::Replay { files })
        }
        Some("corpus") => {
            let rest: Vec<&str> = it.collect();
            match rest.as_slice() {
                [] => Ok(FuzzCli::Corpus { dir: DEFAULT_CORPUS.into() }),
                [dir] if !dir.starts_with('-') => Ok(FuzzCli::Corpus { dir: (*dir).into() }),
                [flag] => Err(format!("unknown flag {flag:?}")),
                _ => Err("corpus takes at most one directory".into()),
            }
        }
        Some(other) => Err(format!("unknown command {other:?}")),
        None => Err("no command (try run, replay or corpus)".into()),
    }
}

/// What a full invocation did.
#[derive(Debug, Clone)]
pub struct FuzzRun {
    /// Human-readable per-case log plus summary line.
    pub rendered: String,
    /// Cases (or replays) that failed.
    pub failures: usize,
    /// Cases vetoed by the static pre-screen.
    pub skipped: usize,
    /// Cases that passed.
    pub passed: usize,
}

fn run_batch(
    seed: u64,
    iters: usize,
    corpus_dir: Option<&str>,
    inject_bug: bool,
) -> Result<FuzzRun, String> {
    let bug = if inject_bug { Bug::EngineMergeSkew } else { Bug::None };
    let mut rendered = String::new();
    let (mut failures, mut skipped, mut passed) = (0, 0, 0);
    for i in 0..iters {
        let case_seed = seed.wrapping_add(i as u64);
        let cfg = FuzzConfig::generate(case_seed);
        match run_case(&cfg, bug) {
            CaseOutcome::Pass(stats) => {
                passed += 1;
                rendered.push_str(&format!(
                    "case {case_seed:#018x}: pass (splits {}, merges {}, delivered {}{})\n",
                    stats.splits,
                    stats.merges,
                    stats.delivered,
                    if stats.cluster { ", cluster" } else { "" }
                ));
            }
            CaseOutcome::Skipped { reason } => {
                skipped += 1;
                rendered.push_str(&format!("case {case_seed:#018x}: skip ({reason})\n"));
            }
            CaseOutcome::Fail { reason } => {
                failures += 1;
                rendered.push_str(&format!("case {case_seed:#018x}: FAIL ({reason})\n"));
                let minimized = shrink(&cfg, bug, SHRINK_BUDGET);
                rendered.push_str(&format!(
                    "  shrunk in {} steps / {} evaluations: {}\n",
                    minimized.steps, minimized.evaluations, minimized.reason
                ));
                let repro =
                    Repro { seed: case_seed, config: minimized.config, failure: minimized.reason };
                if let Some(dir) = corpus_dir {
                    let path = corpus::write_repro(Path::new(dir), &repro)
                        .map_err(|e| format!("writing repro: {e}"))?;
                    rendered.push_str(&format!("  repro: {}\n", path.display()));
                } else {
                    rendered.push_str(&format!("  repro: {}\n", corpus::render_repro(&repro)));
                }
            }
        }
    }
    rendered.push_str(&format!(
        "pp-fuzz: {iters} case(s), {passed} passed, {skipped} skipped, {failures} failure(s)\n"
    ));
    Ok(FuzzRun { rendered, failures, skipped, passed })
}

fn run_replays(files: &[String]) -> FuzzRun {
    let mut rendered = String::new();
    let (mut failures, mut passed) = (0, 0);
    let mut skipped = 0;
    for file in files {
        match corpus::replay_file(Path::new(file)) {
            Ok(replay) => match replay.outcome {
                CaseOutcome::Pass(_) => {
                    passed += 1;
                    rendered.push_str(&format!("{file}: clean (was: {})\n", replay.repro.failure));
                }
                CaseOutcome::Skipped { reason } => {
                    // A pinned repro must stay runnable; a veto means the
                    // case no longer tests anything.
                    failures += 1;
                    skipped += 1;
                    rendered
                        .push_str(&format!("{file}: FAIL (repro now pre-screened: {reason})\n"));
                }
                CaseOutcome::Fail { reason } => {
                    failures += 1;
                    rendered.push_str(&format!("{file}: FAIL ({reason})\n"));
                }
            },
            Err(e) => {
                failures += 1;
                rendered.push_str(&format!("{file}: FAIL ({e})\n"));
            }
        }
    }
    rendered.push_str(&format!(
        "pp-fuzz: {} replay(s), {passed} clean, {failures} failure(s)\n",
        files.len()
    ));
    FuzzRun { rendered, failures, skipped, passed }
}

/// Executes a parsed invocation.
pub fn run_fuzz(cli: &FuzzCli) -> Result<FuzzRun, String> {
    match cli {
        FuzzCli::Run { seed, iters, corpus, inject_bug } => {
            run_batch(*seed, *iters, corpus.as_deref(), *inject_bug)
        }
        FuzzCli::Replay { files } => Ok(run_replays(files)),
        FuzzCli::Corpus { dir } => {
            let files =
                corpus::corpus_files(Path::new(dir)).map_err(|e| format!("corpus {dir:?}: {e}"))?;
            if files.is_empty() {
                return Err(format!("corpus {dir:?} has no repro files"));
            }
            let names: Vec<String> =
                files.iter().map(|p| p.to_string_lossy().into_owned()).collect();
            Ok(run_replays(&names))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_grammar() {
        assert_eq!(
            parse(&["run", "--seed", "7", "--iters", "3"]).unwrap(),
            FuzzCli::Run { seed: 7, iters: 3, corpus: None, inject_bug: false }
        );
        assert_eq!(
            parse(&["run", "--quick"]).unwrap(),
            FuzzCli::Run {
                seed: DEFAULT_SEED,
                iters: QUICK_ITERS,
                corpus: None,
                inject_bug: false
            }
        );
        assert_eq!(
            parse(&["run", "--quick", "--iters", "2", "--corpus", "c", "--inject-bug"]).unwrap(),
            FuzzCli::Run {
                seed: DEFAULT_SEED,
                iters: 2,
                corpus: Some("c".into()),
                inject_bug: true
            }
        );
        assert_eq!(
            parse(&["replay", "a.json", "b.json"]).unwrap(),
            FuzzCli::Replay { files: vec!["a.json".into(), "b.json".into()] }
        );
        assert_eq!(parse(&["corpus"]).unwrap(), FuzzCli::Corpus { dir: "corpus".into() });
        assert_eq!(parse(&["corpus", "pins"]).unwrap(), FuzzCli::Corpus { dir: "pins".into() });

        assert!(parse(&["run", "--sede"]).unwrap_err().contains("--sede"));
        assert!(parse(&["run", "--seed"]).unwrap_err().contains("requires a value"));
        assert!(parse(&["run", "--iters", "0"]).unwrap_err().contains(">= 1"));
        assert!(parse(&["run", "--iters", "x"]).unwrap_err().contains("invalid iters"));
        assert!(parse(&["replay"]).unwrap_err().contains("at least one"));
        assert!(parse(&["replay", "--all"]).unwrap_err().contains("--all"));
        assert!(parse(&["corpus", "--all"]).unwrap_err().contains("--all"));
        assert!(parse(&["fuzz"]).unwrap_err().contains("unknown command"));
        assert!(parse::<&str>(&[]).unwrap_err().contains("no command"));
    }
}
