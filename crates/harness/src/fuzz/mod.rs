//! `pp-fuzz`: the differential conformance fuzzer.
//!
//! The repository carries several execution surfaces that all claim to
//! implement the same PayloadPark semantics: the register-backed scalar
//! program, the `FlowStore` program over three store implementations,
//! the sharded `pp_fastpath` engine, the `pp_cluster` distributed tier
//! and the discrete-event testbed. The conformance suites pin them to
//! each other at *fixed* configurations; this module searches the
//! configuration space instead.
//!
//! From a single `u64` seed, [`config`] expands a random deployment and
//! traffic shape; [`driver`] statically pre-screens it (rejected
//! configs are skipped, never executed) and runs every path under the
//! same seeded adversity, requiring exact cross-path equivalence, a
//! clean conformance oracle everywhere, and agreement between the
//! adaptive evictor and its pure [`model`]. Failures are minimized by
//! the deterministic [`shrink`]er into a replayable [`corpus`] repro;
//! the checked-in `corpus/` directory of pinned regressions replays on
//! every CI push, and [`cli`] is the strict command-line surface the
//! `pp-fuzz` binary exposes.

pub mod cli;
pub mod config;
pub mod corpus;
pub mod driver;
pub mod model;
pub mod shrink;

pub use cli::{parse, run_fuzz, usage, FuzzCli, FuzzRun};
pub use config::{FuzzConfig, StoreChoice};
pub use corpus::{parse_repro, render_repro, replay_file, Repro};
pub use driver::{run_case, Bug, CaseOutcome};
pub use shrink::{shrink, ShrinkResult};
