//! Deterministic failure shrinking.
//!
//! When a case fails, the shrinker minimizes it axis by axis: a fixed,
//! ordered list of single-axis reduction candidates is generated from
//! the current config; the first candidate that **still fails** (skips
//! and passes both reject it) becomes the new current config and the
//! scan restarts. The loop ends at a fixpoint — no candidate reproduces
//! the failure — or at the evaluation budget.
//!
//! Everything here is deterministic: candidate order is fixed, the
//! driver is seeded, and repro JSON renders byte-stably. CI exploits
//! that by shrinking the same injected bug twice and diffing the repro
//! files verbatim.

use super::config::{FuzzConfig, StoreChoice, MIN_PACKETS};
use super::driver::{run_case, Bug, CaseOutcome};

/// A finished shrink.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimized config (still failing).
    pub config: FuzzConfig,
    /// The minimized failure reason.
    pub reason: String,
    /// Accepted reduction steps.
    pub steps: usize,
    /// Driver evaluations spent.
    pub evaluations: usize,
}

/// Every single-axis reduction of `cfg`, most structural first. Order
/// is part of the shrinker's determinism contract — append, don't
/// reorder.
fn candidates(cfg: &FuzzConfig) -> Vec<FuzzConfig> {
    let mut out = Vec::new();
    let mut push = |f: &dyn Fn(&mut FuzzConfig)| {
        let mut c = cfg.clone();
        f(&mut c);
        if c != *cfg {
            out.push(c);
        }
    };

    // Structure first: fewer waves, no cluster, shorter schedule.
    push(&|c| {
        c.waves = 1;
        if let Some(cl) = &mut c.cluster {
            cl.schedule.clear();
        }
    });
    push(&|c| c.cluster = None);
    push(&|c| {
        if let Some(cl) = &mut c.cluster {
            cl.schedule.clear();
        }
    });
    push(&|c| {
        if let Some(cl) = &mut c.cluster {
            if !cl.schedule.is_empty() {
                cl.schedule.truncate(cl.schedule.len() - 1);
            }
        }
    });
    push(&|c| {
        if let Some(cl) = &mut c.cluster {
            cl.switches = 2;
        }
    });

    // Wave length, in coarse-to-fine steps.
    for reduce in [
        &(|p: usize| p / 2) as &dyn Fn(usize) -> usize,
        &|p| p * 3 / 4,
        &|p| p.saturating_sub(8),
        &|p| p - 1,
    ] {
        push(&|c| {
            let next = reduce(c.packets).max(MIN_PACKETS);
            if next < c.packets {
                c.packets = next;
            }
        });
    }

    // Adversity knobs, one at a time.
    push(&|c| c.adversity.to_nf_drop_permille = 0);
    push(&|c| c.adversity.drop_permille = 0);
    push(&|c| c.adversity.duplicate_permille = 0);
    push(&|c| c.adversity.truncate_permille = 0);
    push(&|c| c.adversity.corrupt_permille = 0);
    push(&|c| {
        c.adversity.reorder_permille = 0;
        c.adversity.max_displacement = 0;
    });
    push(&|c| c.adversity.blackout = None);

    // Simpler stores, plainer traffic, smaller geometry.
    push(&|c| {
        if let StoreChoice::SlabSpill { .. } = c.store {
            c.store = StoreChoice::Slab;
        }
    });
    push(&|c| {
        if c.store == StoreChoice::Slab {
            c.store = StoreChoice::Circular;
        }
    });
    push(&|c| c.tcp_permille = 0);
    push(&|c| {
        if c.slices > 4 {
            c.slices = 4;
        }
    });
    push(&|c| {
        if c.slots > 8 {
            c.slots = (c.slots / 2).max(8);
        }
    });
    push(&|c| {
        if c.expiry > 1 {
            c.expiry = 1;
        }
    });
    push(&|c| c.nf = super::config::NfChoice::MacSwap);
    push(&|c| {
        if c.des.duration_us > 200 {
            c.des.duration_us = (c.des.duration_us / 2).max(200);
        }
    });

    out
}

/// Minimizes `cfg` (which must fail under `bug`) within `max_evals`
/// driver runs. Returns the fixpoint config and its failure reason.
pub fn shrink(cfg: &FuzzConfig, bug: Bug, max_evals: usize) -> ShrinkResult {
    let mut current = cfg.clone();
    let mut reason = match run_case(&current, bug) {
        CaseOutcome::Fail { reason } => reason,
        other => panic!("shrink requires a failing case, got {other:?}"),
    };
    let mut steps = 0;
    let mut evaluations = 1;
    'outer: loop {
        for cand in candidates(&current) {
            if evaluations >= max_evals {
                break 'outer;
            }
            evaluations += 1;
            if let CaseOutcome::Fail { reason: r } = run_case(&cand, bug) {
                current = cand;
                reason = r;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    ShrinkResult { config: current, reason, steps, evaluations }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidates_are_deterministic_and_strictly_different() {
        let cfg = FuzzConfig::generate(11);
        let a = candidates(&cfg);
        let b = candidates(&cfg);
        assert_eq!(a, b);
        for c in &a {
            assert_ne!(c, &cfg, "candidate must change the config");
        }
    }

    /// Shrinking the injected engine bug strips structure down to the
    /// minimal deterministic case — and does so identically twice.
    #[test]
    fn injected_bug_shrinks_deterministically() {
        let mut cfg = FuzzConfig::generate(1);
        cfg.slices = 4;
        cfg.slots = 48;
        cfg.waves = 2;
        cfg.packets = 60;
        cfg.cluster = None;
        let first = shrink(&cfg, Bug::EngineMergeSkew, 64);
        let second = shrink(&cfg, Bug::EngineMergeSkew, 64);
        assert_eq!(first.config, second.config, "shrinker must be deterministic");
        assert_eq!(first.reason, second.reason);
        assert_eq!(first.config.to_json_value().render(), second.config.to_json_value().render());
        assert_eq!(first.config.waves, 1, "waves should minimize");
        assert!(first.config.packets < 60, "packets should minimize");
        assert!(first.steps > 0);
        // The minimized case still fails with the same class of defect.
        assert!(first.reason.contains("engine (4 workers)"), "{}", first.reason);
    }
}
