//! Throughput-regression gate for the CI bench trajectory.
//!
//! `pp-exp throughput --out BENCH_fastpath.json` snapshots the emulator
//! throughput series; `--baseline FILE [--tolerance T]` compares a fresh
//! run against the committed snapshot and fails when any worker width
//! lost more than `T` of its packets/sec (default 15 % — wall-clock
//! throughput on shared CI runners is noisy, so the bar is deliberately
//! loose; the committed baseline should come from a quiet host).

use pp_metrics::Series;

/// Default allowed fractional throughput loss before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// The gate's verdict: per-row comparison lines, plus the failures.
pub struct GateReport {
    /// One human-readable line per compared row.
    pub lines: Vec<String>,
    /// Rows that regressed beyond the tolerance.
    pub failures: Vec<String>,
}

impl GateReport {
    /// True when no row regressed beyond the tolerance.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares the `pps` column of `current` against `baseline`, row-matched
/// on the x value (the worker count; `0` is the scalar pipeline). A row
/// fails when its throughput drops below `baseline * (1 - tolerance)`.
/// Rows present on only one side are reported but never fail the gate —
/// adding a worker width must not invalidate an old baseline.
///
/// Errors (malformed baseline, missing `pps` column) are distinct from
/// regressions: they mean the comparison itself could not run.
pub fn compare_throughput(
    current: &Series,
    baseline: &Series,
    tolerance: f64,
) -> Result<GateReport, String> {
    let cur_pps = current.column_index("pps").ok_or("current series has no pps column")?;
    let base_pps = baseline.column_index("pps").ok_or("baseline series has no pps column")?;
    let mut report = GateReport { lines: Vec::new(), failures: Vec::new() };
    for cur in current.points() {
        let Some(base) = baseline.points().iter().find(|p| p.x == cur.x) else {
            report.lines.push(format!("workers={}: no baseline row (skipped)", cur.x));
            continue;
        };
        let (now, then) = (cur.values[cur_pps], base.values[base_pps]);
        if !now.is_finite() || !then.is_finite() || then <= 0.0 {
            return Err(format!("workers={}: non-finite pps (now={now}, baseline={then})", cur.x));
        }
        let ratio = now / then;
        let verdict = if ratio >= 1.0 - tolerance { "ok" } else { "REGRESSED" };
        report.lines.push(format!(
            "workers={}: {:.0} pps vs baseline {:.0} ({:+.1}%) {}",
            cur.x,
            now,
            then,
            (ratio - 1.0) * 100.0,
            verdict
        ));
        if ratio < 1.0 - tolerance {
            report.failures.push(format!(
                "workers={}: {:.0} pps is {:.1}% below baseline {:.0} (tolerance {:.0}%)",
                cur.x,
                now,
                (1.0 - ratio) * 100.0,
                then,
                tolerance * 100.0
            ));
        }
    }
    if report.lines.is_empty() {
        return Err("no comparable rows between current and baseline".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(rows: &[(f64, f64)]) -> Series {
        let mut s = Series::new("t", "workers", vec!["pps".into(), "egress_gbps".into()]);
        for &(x, pps) in rows {
            s.push(x, vec![pps, 1.0]);
        }
        s
    }

    #[test]
    fn within_tolerance_passes() {
        let base = series(&[(0.0, 1_000_000.0), (2.0, 2_000_000.0)]);
        let cur = series(&[(0.0, 900_000.0), (2.0, 1_800_000.0)]);
        let r = compare_throughput(&cur, &base, 0.15).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
        assert_eq!(r.lines.len(), 2);
    }

    #[test]
    fn beyond_tolerance_fails_with_the_offending_row() {
        let base = series(&[(0.0, 1_000_000.0), (2.0, 2_000_000.0)]);
        let cur = series(&[(0.0, 800_000.0), (2.0, 2_100_000.0)]);
        let r = compare_throughput(&cur, &base, 0.15).unwrap();
        assert!(!r.passed());
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("workers=0"), "{}", r.failures[0]);
    }

    #[test]
    fn improvements_always_pass() {
        let base = series(&[(0.0, 1_000_000.0)]);
        let cur = series(&[(0.0, 3_000_000.0)]);
        assert!(compare_throughput(&cur, &base, 0.15).unwrap().passed());
    }

    #[test]
    fn unmatched_rows_are_skipped_not_failed() {
        let base = series(&[(0.0, 1_000_000.0)]);
        let cur = series(&[(0.0, 1_000_000.0), (8.0, 5_000_000.0)]);
        let r = compare_throughput(&cur, &base, 0.15).unwrap();
        assert!(r.passed());
        assert!(r.lines.iter().any(|l| l.contains("no baseline row")));
    }

    #[test]
    fn missing_pps_column_is_an_error_not_a_regression() {
        let base = Series::new("t", "workers", vec!["other".into()]);
        let cur = series(&[(0.0, 1.0)]);
        assert!(compare_throughput(&cur, &base, 0.15).is_err());
    }
}
