//! The multi-server testbed (paper §6.2.3, Figs. 10-11).
//!
//! One pipe, two memory slices, two NF servers, each with its own
//! traffic generator (the paper attaches two servers to each of the four
//! pipes; pipes share nothing, so the 8-server experiment is four
//! independent instances of this testbed, run in parallel threads).
//!
//! Port plan on the pipe: generator A on ports 0-1, server A on 2, sink A
//! on 3; generator B on ports 4-5, server B on 6, sink B on 7.

use crate::testbed::{ChainSpec, DeployMode, FrameworkKind, RunReport};
use payloadpark::program::{build_baseline_switch, build_switch};
use payloadpark::{ParkConfig, PipeControl, PipePark, SliceSpec};
use pp_metrics::{GoodputMeter, HealthTracker, LatencyStats};
use pp_netsim::event::EventQueue;
use pp_netsim::link::Link;
use pp_netsim::rng::DetRng;
use pp_netsim::time::{Bandwidth, SimDuration, SimTime};
use pp_nf::server::{NfServer, RxOutcome, ServerProfile};
use pp_packet::{MacAddr, Packet};
use pp_rmt::chip::ChipProfile;
use pp_trafficgen::gen::{GenConfig, SizeModel, TrafficGen};
use std::net::Ipv4Addr;

/// Per-server generator port assignments.
const GEN_PORTS: [[u16; 2]; 2] = [[0, 1], [4, 5]];
/// Per-server NF-server ports.
const SERVER_PORTS: [u16; 2] = [2, 6];
/// Per-server sink ports.
const SINK_PORTS: [u16; 2] = [3, 7];

/// Configuration for the two-server pipe.
#[derive(Debug, Clone)]
pub struct MultiServerConfig {
    /// NIC/link rate in Gbps (40 GE in the paper's setup).
    pub nic_gbps: f64,
    /// Offered rate per server's generator (Gbps).
    pub rate_gbps: f64,
    /// Fixed packet size (384 B in the paper).
    pub packet_size: usize,
    /// Send window.
    pub duration: SimDuration,
    /// NF chain (MAC swapper in the paper).
    pub chain: ChainSpec,
    /// Framework profile.
    pub framework: FrameworkKind,
    /// Server model (the 8-server rig uses weaker 2.4 GHz CPUs).
    pub server: ServerProfile,
    /// Per-byte cycles override for the weaker 8-server rig's memory
    /// subsystem (the E5-2407v2-class machines of §6.1).
    pub per_byte_cycles: f64,
    /// Run seed.
    pub seed: u64,
    /// Baseline or PayloadPark. The PayloadPark `sram_fraction` is the
    /// *total* pipe reservation; each slice gets half (static slicing).
    pub mode: DeployMode,
}

impl Default for MultiServerConfig {
    fn default() -> Self {
        MultiServerConfig {
            nic_gbps: 40.0,
            rate_gbps: 6.0,
            packet_size: 384,
            duration: SimDuration::from_millis(30),
            chain: ChainSpec::MacSwap,
            framework: FrameworkKind::OpenNetVm,
            // "2.4GHz 8 core Intel Xeon CPUs" (§6.1): weaker than the main
            // rig.
            server: ServerProfile { cpu_hz: 2.4e9, ..Default::default() },
            per_byte_cycles: 1.2,
            seed: 11,
            mode: DeployMode::Baseline,
        }
    }
}

enum Ev {
    Switch { port: u16, pkt: Packet },
    Server { server: usize, pkt: Packet },
    Sink { server: usize, pkt: Packet },
}

/// Runs the two-server pipe; returns one report per server.
pub fn run_pipe(config: &MultiServerConfig) -> [RunReport; 2] {
    let chip = ChipProfile::default();
    let server_macs = [MacAddr::from_index(100), MacAddr::from_index(101)];
    let sink_macs = [MacAddr::from_index(200), MacAddr::from_index(201)];
    let src_bases = [Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 64, 0, 1)];

    let (mut switch, control) = match config.mode {
        DeployMode::Baseline => (build_baseline_switch(chip).expect("builds"), None),
        DeployMode::PayloadPark(p) => {
            let mut park = ParkConfig {
                chip,
                expiry_threshold: p.expiry,
                primary_blocks: 10,
                annex_blocks: 14,
                pipes: vec![PipePark {
                    pipe: 0,
                    slices: (0..2)
                        .map(|s| SliceSpec {
                            name: format!("server{s}"),
                            split_ports: GEN_PORTS[s].to_vec(),
                            merge_ports: vec![SERVER_PORTS[s]],
                            slots: 16, // fixed below
                        })
                        .collect(),
                    annex_pipe: None,
                }],
            };
            let per_slice = (park.slots_for_sram_fraction(p.sram_fraction) / 2).max(1);
            for s in &mut park.pipes[0].slices {
                s.slots = per_slice;
            }
            let (sw, handles) = build_switch(&park).expect("park builds");
            (sw, Some(PipeControl::new(handles[0].clone())))
        }
    };
    for s in 0..2 {
        switch.l2_add(server_macs[s], pp_rmt::PortId(SERVER_PORTS[s]));
        switch.l2_add(sink_macs[s], pp_rmt::PortId(SINK_PORTS[s]));
    }

    let explicit = matches!(config.mode, DeployMode::PayloadPark(p) if p.explicit_drop);
    let mut servers: Vec<NfServer> = (0..2)
        .map(|s| {
            let mut profile = config.server;
            profile.framework = config.framework.profile_for(explicit);
            profile.framework.per_byte_cycles = config.per_byte_cycles;
            let chain = config.chain.build(128, src_bases[s]);
            let mut srv =
                NfServer::new(profile, chain, DetRng::derive(config.seed, &format!("server{s}")));
            srv.set_tx_dst_mac(sink_macs[s]);
            srv
        })
        .collect();

    let bw = Bandwidth::gbps(config.nic_gbps);
    let prop = SimDuration::from_nanos(500);
    let mut gen_links =
        [[Link::new(bw, prop), Link::new(bw, prop)], [Link::new(bw, prop), Link::new(bw, prop)]];
    let mut to_server = [Link::new(bw, prop), Link::new(bw, prop)];
    let mut from_server = [Link::new(bw, prop), Link::new(bw, prop)];
    let mut to_sink = [
        Link::new(Bandwidth::gbps(config.nic_gbps * 2.0), prop),
        Link::new(Bandwidth::gbps(config.nic_gbps * 2.0), prop),
    ];

    let mut gens: Vec<TrafficGen> = (0..2)
        .map(|s| {
            TrafficGen::new(GenConfig {
                rate_gbps: config.rate_gbps,
                // Two generator ports per server: aggregate pacing.
                line_rate_gbps: config.nic_gbps * 2.0,
                burst: 32,
                sizes: SizeModel::Fixed(config.packet_size),
                mix: pp_trafficgen::gen::TrafficMix::UdpOnly,
                flows: 128,
                dst_mac: server_macs[s],
                dst_ip: Ipv4Addr::new(10, 10, 0, s as u8 + 1),
                src_ip_base: src_bases[s],
                seed: config.seed ^ ((s as u64 + 1) * 0x9E37),
            })
        })
        .collect();

    let duration_ns = config.duration.nanos();
    let mut departures: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut latency = [LatencyStats::new(), LatencyStats::new()];
    let mut goodput = [GoodputMeter::new(), GoodputMeter::new()];
    let mut delivered_total = [0u64; 2];

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut next_gen: [Option<(SimTime, Packet)>; 2] =
        [Some(gens[0].next_packet()), Some(gens[1].next_packet())];

    loop {
        // Earliest among the two generators and the event queue.
        let mut which: Option<usize> = None;
        let mut best = queue.peek_time();
        for (s, ng) in next_gen.iter().enumerate() {
            if let Some((t, _)) = ng {
                if best.is_none_or(|b| *t <= b) {
                    best = Some(*t);
                    which = Some(s);
                }
            }
        }
        if best.is_none() {
            break;
        }

        if let Some(s) = which {
            let (t, pkt) = next_gen[s].take().expect("present");
            let seq = pkt.seq() as usize;
            if departures[s].len() <= seq {
                departures[s].resize(seq + 1, 0);
            }
            departures[s][seq] = t.nanos();
            let lane = seq % 2;
            let arrival = gen_links[s][lane].transmit(t, pkt.len());
            queue.schedule(arrival, Ev::Switch { port: GEN_PORTS[s][lane], pkt });
            let (t_next, p_next) = gens[s].next_packet();
            if t_next.nanos() < duration_ns {
                next_gen[s] = Some((t_next, p_next));
            }
            continue;
        }

        let (now, ev) = queue.pop().expect("non-empty");
        match ev {
            Ev::Switch { port, pkt } => {
                let seq = pkt.seq();
                for out in switch.process(pkt.bytes(), pp_rmt::PortId(port), seq) {
                    let t_out = now + SimDuration::from_nanos(out.latency_ns);
                    let fwd = Packet::with_seq(out.bytes, out.seq);
                    if let Some(s) = SERVER_PORTS.iter().position(|&p| p == out.port.0) {
                        let arrival = to_server[s].transmit(t_out, fwd.len());
                        queue.schedule(arrival, Ev::Server { server: s, pkt: fwd });
                    } else if let Some(s) = SINK_PORTS.iter().position(|&p| p == out.port.0) {
                        let arrival = to_sink[s].transmit(t_out, fwd.len());
                        queue.schedule(arrival, Ev::Sink { server: s, pkt: fwd });
                    }
                }
            }
            Ev::Server { server, pkt } => match servers[server].rx(now, pkt) {
                RxOutcome::Dropped | RxOutcome::Done { packet: None, .. } => {}
                RxOutcome::Done { time, packet: Some(out) } => {
                    let arrival = from_server[server].transmit(time, out.len());
                    queue.schedule(arrival, Ev::Switch { port: SERVER_PORTS[server], pkt: out });
                }
            },
            Ev::Sink { server, pkt } => {
                delivered_total[server] += 1;
                if now.nanos() <= duration_ns {
                    goodput[server].record(now, pkt.len());
                    let dep = departures[server].get(pkt.seq() as usize).copied().unwrap_or(0);
                    latency[server].record(SimDuration::from_nanos(now.nanos() - dep));
                }
            }
        }
    }

    let counters = control.as_ref().map(|c| c.counters(&switch));
    let swstats = switch.stats();
    let premature_total = counters.map(|c| c.premature_evictions + c.crc_fail).unwrap_or(0);

    core::array::from_fn(|s| {
        let sstats = servers[s].stats();
        // Premature evictions are a per-pipe counter; attribute half to
        // each server (slices are symmetric by construction).
        let premature = premature_total / 2 + (premature_total % 2) * s as u64;
        let health = HealthTracker {
            offered: gens[s].generated(),
            delivered: delivered_total[s],
            intended_drops: sstats.nf_dropped,
            ring_drops: sstats.ring_drops,
            premature_eviction_drops: premature,
            other_drops: if s == 0 {
                swstats.parse_errors + swstats.dropped_no_route + swstats.dropped_recirc_limit
            } else {
                0
            },
        };
        let backlog_pkts = delivered_total[s] - goodput[s].delivered();
        RunReport {
            send_gbps: config.rate_gbps,
            goodput_gbps: goodput[s].goodput_gbps(duration_ns),
            throughput_gbps: goodput[s].throughput_gbps(duration_ns),
            rate_mpps: goodput[s].rate_mpps(duration_ns),
            avg_latency_us: latency[s].avg_us(),
            jitter_us: latency[s].jitter_us(),
            p99_latency_us: latency[s].percentile_us(0.99),
            pcie_gbps: servers[s].pcie_achieved_gbps(SimTime(duration_ns)),
            health,
            backlog_pkts,
            counters,
            occupancy: 0,
            server_stats: sstats,
            switch_stats: swstats,
            fault_tally: Default::default(),
            latency: latency[s].clone(),
            oracle_violations: Vec::new(),
            flight_dump: None,
        }
    })
}

impl FrameworkKind {
    /// Builds the framework profile, optionally with the Explicit-Drop
    /// patch.
    pub fn profile_for(self, explicit_drop: bool) -> pp_nf::framework::FrameworkProfile {
        let p = match self {
            FrameworkKind::OpenNetVm => pp_nf::framework::FrameworkProfile::open_netvm(),
            FrameworkKind::NetBricks => pp_nf::framework::FrameworkProfile::netbricks(),
        };
        if explicit_drop {
            p.with_explicit_drop()
        } else {
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::ParkParams;

    fn quick(mode: DeployMode) -> [RunReport; 2] {
        run_pipe(&MultiServerConfig {
            rate_gbps: 3.0,
            duration: SimDuration::from_millis(3),
            server: ServerProfile {
                jitter_frac: 0.0,
                modulation_amplitude: 0.0,
                cpu_hz: 2.4e9,
                ..Default::default()
            },
            mode,
            ..Default::default()
        })
    }

    #[test]
    fn both_servers_deliver_baseline() {
        let [a, b] = quick(DeployMode::Baseline);
        assert!(a.healthy(), "{:?}", a.health);
        assert!(b.healthy(), "{:?}", b.health);
        assert!(a.goodput_gbps > 0.0 && b.goodput_gbps > 0.0);
        // Symmetric load → comparable goodput.
        assert!((a.goodput_gbps - b.goodput_gbps).abs() / a.goodput_gbps < 0.05);
    }

    #[test]
    fn both_servers_split_and_merge_with_park() {
        let [a, b] = quick(DeployMode::PayloadPark(ParkParams {
            sram_fraction: 0.40,
            ..Default::default()
        }));
        assert!(a.healthy(), "{:?}", a.health);
        assert!(b.healthy(), "{:?}", b.health);
        let c = a.counters.expect("park counters");
        assert!(c.splits > 0 && c.merges > 0);
        assert!(c.functionally_equivalent(), "{c:?}");
        // 384-byte packets: payload 342 >= 160, so every packet splits.
        assert_eq!(c.disabled_small_payload, 0);
    }

    #[test]
    fn park_saves_pcie_on_both_servers() {
        let base = quick(DeployMode::Baseline);
        let park = quick(DeployMode::PayloadPark(ParkParams {
            sram_fraction: 0.40,
            ..Default::default()
        }));
        for s in 0..2 {
            assert!(
                park[s].pcie_gbps < base[s].pcie_gbps,
                "server {s}: {} !< {}",
                park[s].pcie_gbps,
                base[s].pcie_gbps
            );
        }
    }
}
