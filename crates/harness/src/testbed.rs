//! The single-server testbed (paper Fig. 5).
//!
//! ```text
//!            2 × NIC ports                1 × NIC port
//! PktGen ==================> RMT switch <============> NF server
//!    ^                          |   ^
//!    |        (sink path)       v   | (headers return)
//!    +--------------------------+---+
//! ```
//!
//! The generator's two ports feed the split side (so the split-side links
//! are never the bottleneck, §6.1); the server hangs off one port; packets
//! returning from the NF chain are merged and L2-forwarded to the sink,
//! where goodput and end-to-end latency are measured.

use payloadpark::program::{build_baseline_switch, build_switch};
use payloadpark::{CounterSnapshot, ParkConfig, PipeControl};
use pp_metrics::{GoodputMeter, HealthTracker, LatencyStats};
use pp_netsim::adversity::{internal_leg_protected_prefix, AdversityProfile, FaultTally, Leg};
use pp_netsim::event::EventQueue;
use pp_netsim::link::Link;
use pp_netsim::rng::DetRng;
use pp_netsim::time::{Bandwidth, SimDuration, SimTime};
use pp_nf::chain::NfChain;
use pp_nf::framework::FrameworkProfile;
use pp_nf::nfs::firewall::{Firewall, FirewallRule};
use pp_nf::nfs::maglev::{Backend, MaglevLb};
use pp_nf::nfs::{MacSwap, Nat, Synthetic};
use pp_nf::server::{NfServer, RxOutcome, ServerProfile};
use pp_packet::{MacAddr, Packet};
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::SwitchModel;
use pp_trafficgen::gen::{GenConfig, SizeModel, TrafficGen, TrafficMix};
use std::net::Ipv4Addr;

/// Generator split-side ports.
pub const GEN_PORTS: [u16; 2] = [0, 1];
/// NF-server port.
pub const SERVER_PORT: u16 = 2;
/// Sink port (measurement).
pub const SINK_PORT: u16 = 3;

/// Which NF chain runs on the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChainSpec {
    /// No NFs (framework forwarding only).
    Empty,
    /// MAC swapper (multi-server and equivalence experiments).
    MacSwap,
    /// Firewall with `rules` non-matching rules.
    Firewall {
        /// Number of ACL rules (all probed).
        rules: usize,
    },
    /// NAT only.
    Nat,
    /// Firewall → NAT (the 2-NF chain; 1 firewall rule in the paper).
    FwNat {
        /// Firewall rule count.
        fw_rules: usize,
    },
    /// Firewall → NAT → Maglev LB (the 3-NF chain; 20 rules in the paper).
    FwNatLb {
        /// Firewall rule count.
        fw_rules: usize,
    },
    /// Synthetic busy-loop NF of the given per-packet cycles (§6.3.3).
    Synthetic {
        /// Cycles per packet.
        cycles: u64,
    },
    /// Firewall → NAT where the firewall blacklists a fraction of the
    /// generator's flows (the Fig. 12 drop-rate control).
    FwNatBlacklist {
        /// Fraction of flows blocked, in percent (0-100).
        blocked_pct: u8,
    },
}

impl ChainSpec {
    /// Instantiates the chain. `flows` is the generator flow count and
    /// `src_base` its first source address (used to build blacklists).
    pub fn build(&self, flows: usize, src_base: Ipv4Addr) -> NfChain {
        match *self {
            ChainSpec::Empty => NfChain::empty(),
            ChainSpec::MacSwap => NfChain::new(vec![Box::new(MacSwap::new())]),
            ChainSpec::Firewall { rules } => {
                NfChain::new(vec![Box::new(Firewall::with_rule_count(rules))])
            }
            ChainSpec::Nat => {
                NfChain::new(vec![Box::new(Nat::new(Ipv4Addr::new(198, 51, 100, 1)))])
            }
            ChainSpec::FwNat { fw_rules } => NfChain::new(vec![
                Box::new(Firewall::with_rule_count(fw_rules)),
                Box::new(Nat::new(Ipv4Addr::new(198, 51, 100, 1))),
            ]),
            ChainSpec::FwNatLb { fw_rules } => NfChain::new(vec![
                Box::new(Firewall::with_rule_count(fw_rules)),
                Box::new(Nat::new(Ipv4Addr::new(198, 51, 100, 1))),
                Box::new(MaglevLb::with_table_size(
                    (0..4)
                        .map(|i| Backend {
                            name: format!("backend-{i}"),
                            ip: Ipv4Addr::new(10, 99, 0, i as u8 + 1),
                        })
                        .collect(),
                    65_537,
                )),
            ]),
            ChainSpec::Synthetic { cycles } => {
                NfChain::new(vec![Box::new(Synthetic::with_cycles("Synthetic", cycles))])
            }
            ChainSpec::FwNatBlacklist { blocked_pct } => {
                let blocked = flows * usize::from(blocked_pct) / 100;
                let rules = (0..blocked)
                    .map(|i| FirewallRule::new(Ipv4Addr::from(u32::from(src_base) + i as u32), 32))
                    .collect();
                NfChain::new(vec![
                    Box::new(Firewall::new(rules)),
                    Box::new(Nat::new(Ipv4Addr::new(198, 51, 100, 1))),
                ])
            }
        }
    }
}

/// NF-framework selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameworkKind {
    /// OpenNetVM profile.
    OpenNetVm,
    /// NetBricks profile.
    NetBricks,
}

impl FrameworkKind {
    fn profile(self, explicit_drop: bool) -> FrameworkProfile {
        let p = match self {
            FrameworkKind::OpenNetVm => FrameworkProfile::open_netvm(),
            FrameworkKind::NetBricks => FrameworkProfile::netbricks(),
        };
        if explicit_drop {
            p.with_explicit_drop()
        } else {
            p
        }
    }
}

/// PayloadPark deployment parameters for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParkParams {
    /// Fraction of one pipe's stage SRAM reserved for the lookup table
    /// (the paper's macro-benchmarks use ≈ 0.26).
    pub sram_fraction: f64,
    /// Expiry threshold (`MAX_EXP`).
    pub expiry: u16,
    /// Park 384 B via recirculation through pipe 1 (§6.2.5).
    pub recirculation: bool,
    /// NF framework sends Explicit-Drop notifications (§6.2.4).
    pub explicit_drop: bool,
}

impl Default for ParkParams {
    fn default() -> Self {
        ParkParams { sram_fraction: 0.26, expiry: 1, recirculation: false, explicit_drop: false }
    }
}

/// Baseline or PayloadPark deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeployMode {
    /// Plain L2 forwarding.
    Baseline,
    /// PayloadPark with the given parameters.
    PayloadPark(ParkParams),
}

/// Full testbed configuration.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// NIC/link rate in Gbps (10 or 40 in the paper).
    pub nic_gbps: f64,
    /// Offered send rate in Gbps (wire bytes).
    pub rate_gbps: f64,
    /// Packet sizing.
    pub sizes: SizeModel,
    /// Transport-protocol mix of the generated traffic.
    pub mix: TrafficMix,
    /// Traffic window; events drain after it closes.
    pub duration: SimDuration,
    /// NF chain on the server.
    pub chain: ChainSpec,
    /// Framework profile.
    pub framework: FrameworkKind,
    /// Server hardware/model parameters (framework field is overwritten
    /// from `framework`/`mode`).
    pub server: ServerProfile,
    /// Distinct generator flows.
    pub flows: usize,
    /// Run seed.
    pub seed: u64,
    /// Deployment under test.
    pub mode: DeployMode,
    /// Adversity scenario on the internal switch ↔ NF-server legs
    /// (disabled by default). Loss and blackouts skip the delivery, delay
    /// and reordering add latency, duplication schedules the packet twice,
    /// truncation and corruption mangle the wire bytes in flight — all
    /// decisions keyed on `(seed, leg, seq)` so a run replays exactly.
    pub adversity: AdversityProfile,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            nic_gbps: 10.0,
            rate_gbps: 4.0,
            sizes: SizeModel::Enterprise,
            mix: TrafficMix::UdpOnly,
            duration: SimDuration::from_millis(50),
            chain: ChainSpec::FwNatLb { fw_rules: 20 },
            framework: FrameworkKind::NetBricks,
            server: ServerProfile::default(),
            flows: 128,
            seed: 1,
            mode: DeployMode::Baseline,
            adversity: AdversityProfile::disabled(),
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Offered send rate (Gbps of wire bytes).
    pub send_gbps: f64,
    /// Goodput in Gbps (UDP-header units, §6.1).
    pub goodput_gbps: f64,
    /// Conventional delivered throughput in Gbps.
    pub throughput_gbps: f64,
    /// Delivered packet rate in Mpps.
    pub rate_mpps: f64,
    /// Average end-to-end latency (µs).
    pub avg_latency_us: f64,
    /// Jitter: peak − average latency (µs).
    pub jitter_us: f64,
    /// 99th-percentile latency (µs).
    pub p99_latency_us: f64,
    /// Achieved PCIe bandwidth on the server (Gbps, both directions).
    pub pcie_gbps: f64,
    /// Health accounting.
    pub health: HealthTracker,
    /// Packets still inside the system (queues, links) when the send window
    /// closed — the backlog that drained afterwards.
    pub backlog_pkts: u64,
    /// PayloadPark counters (None for baseline runs).
    pub counters: Option<CounterSnapshot>,
    /// Occupied lookup-table slots when the run ended (0 for baseline).
    pub occupancy: usize,
    /// Server-side statistics.
    pub server_stats: pp_nf::server::ServerStats,
    /// Switch-side statistics.
    pub switch_stats: pp_rmt::switch::SwitchStats,
    /// What the adversity injectors actually did on the internal legs.
    pub fault_tally: FaultTally,
    /// End-to-end latency distribution (sim time, so deterministic for a
    /// seed) — the telemetry exporter renders its percentile series.
    pub latency: LatencyStats,
    /// Conformance-oracle findings (empty when every invariant held;
    /// always empty for baseline runs, which have no parking state).
    pub oracle_violations: Vec<String>,
    /// The switch's flight recorder dumped as JSONL when the oracle found
    /// a violation: the recent sampled trace events (seq, port, stage,
    /// decision, reason), oldest first.
    pub flight_dump: Option<String>,
}

impl RunReport {
    /// The paper's health criterion (< 0.1 % unintended drops), extended
    /// with a steady-state requirement: a backlog still queued when the
    /// window closes means the offered rate exceeded the service rate even
    /// if the deep rings hid the loss (their testbed's 2-minute runs would
    /// have surfaced it as drops).
    pub fn healthy(&self) -> bool {
        let backlog_bound = (self.health.offered / 200).max(256);
        self.health.healthy() && self.backlog_pkts <= backlog_bound
    }
}

enum Ev {
    /// A packet's last bit arrives at a switch ingress port.
    Switch { port: u16, pkt: Packet },
    /// A packet's last bit arrives at the server NIC.
    Server { pkt: Packet },
    /// A packet's last bit arrives at the sink.
    Sink { pkt: Packet },
}

/// Applies one internal leg's adversity to a packet about to be
/// transmitted. `None` means the packet was lost (random drop or
/// blackout); otherwise the bytes may have been truncated/corrupted in
/// place and the result carries the extra latency to add and whether a
/// duplicate copy should be transmitted as well.
fn inject(
    adv: &AdversityProfile,
    leg: Leg,
    pkt: &mut Packet,
    tally: &mut FaultTally,
) -> Option<(SimDuration, bool)> {
    if adv.leg(leg).is_noop() {
        return Some((SimDuration::from_nanos(0), false));
    }
    tally.seen += 1;
    let plan = adv.plan(leg, pkt.seq());
    if plan.blackout {
        tally.blacked_out += 1;
        return None;
    }
    if plan.drop {
        tally.dropped += 1;
        return None;
    }
    if plan.truncate.is_some() || plan.corrupt.is_some() {
        let protected = internal_leg_protected_prefix(pkt.bytes());
        plan.mutate(pkt.bytes_mut(), protected, tally);
    }
    if plan.displacement > 0 {
        tally.displaced += 1;
    }
    if plan.duplicate {
        tally.duplicated += 1;
    }
    Some((SimDuration::from_nanos(plan.extra_delay_ns), plan.duplicate))
}

/// Runs one experiment.
pub fn run(config: &TestbedConfig) -> RunReport {
    let chip = ChipProfile::default();
    let server_mac = MacAddr::from_index(100);
    let sink_mac = MacAddr::from_index(200);
    let src_base = Ipv4Addr::new(10, 0, 0, 1);

    // --- switch ---
    let (mut switch, control): (SwitchModel, Option<PipeControl>) = match config.mode {
        DeployMode::Baseline => (build_baseline_switch(chip).expect("baseline builds"), None),
        DeployMode::PayloadPark(p) => {
            let mut park = ParkConfig::single_server(
                chip,
                GEN_PORTS.to_vec(),
                SERVER_PORT,
                16, // placeholder, fixed below
            );
            park.expiry_threshold = p.expiry;
            if p.recirculation {
                park.pipes[0].annex_pipe = Some(1);
            }
            park.pipes[0].slices[0].slots = park.slots_for_sram_fraction(p.sram_fraction).max(1);
            let (sw, handles) = build_switch(&park).expect("park config builds");
            (sw, Some(PipeControl::new(handles[0].clone())))
        }
    };
    switch.l2_add(server_mac, pp_rmt::PortId(SERVER_PORT));
    switch.l2_add(sink_mac, pp_rmt::PortId(SINK_PORT));

    // --- server ---
    let explicit = matches!(config.mode, DeployMode::PayloadPark(p) if p.explicit_drop);
    let mut server_profile = config.server;
    server_profile.framework = config.framework.profile(explicit);
    let chain = config.chain.build(config.flows, src_base);
    let mut server = NfServer::new(server_profile, chain, DetRng::derive(config.seed, "server"));
    server.set_tx_dst_mac(sink_mac);

    // --- links ---
    let bw = Bandwidth::gbps(config.nic_gbps);
    let prop = SimDuration::from_nanos(500);
    let mut gen_links = [Link::new(bw, prop), Link::new(bw, prop)];
    let mut to_server = Link::new(bw, prop);
    let mut from_server = Link::new(bw, prop);
    // The sink path spreads over both generator ports in the real rig.
    let mut to_sink = Link::new(Bandwidth::gbps(config.nic_gbps * 2.0), prop);

    // --- generator ---
    let mut gen = TrafficGen::new(GenConfig {
        rate_gbps: config.rate_gbps,
        // Two generator ports: aggregate pacing at 2x the per-port rate.
        line_rate_gbps: config.nic_gbps * 2.0,
        burst: 32,
        sizes: config.sizes.clone(),
        mix: config.mix,
        flows: config.flows,
        dst_mac: server_mac,
        dst_ip: Ipv4Addr::new(10, 10, 0, 1),
        src_ip_base: src_base,
        seed: config.seed,
    });

    // --- measurement state ---
    let mut departures: Vec<u64> = Vec::with_capacity(1 << 16);
    let mut latency = LatencyStats::new();
    let mut goodput = GoodputMeter::new();
    let mut delivered_total = 0u64;
    let duration_ns = config.duration.nanos();

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut next_gen: Option<(SimTime, Packet)> = Some(gen.next_packet());
    let adversity = &config.adversity;
    let mut fault_tally = FaultTally::default();

    loop {
        // Interleave generation with event processing in time order.
        let gen_time = next_gen.as_ref().map(|(t, _)| *t);
        let ev_time = queue.peek_time();
        let take_gen = match (gen_time, ev_time) {
            (Some(g), Some(e)) => g <= e,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };

        if take_gen {
            let (t, pkt) = next_gen.take().expect("checked above");
            let seq = pkt.seq() as usize;
            if departures.len() <= seq {
                departures.resize(seq + 1, 0);
            }
            departures[seq] = t.nanos();
            // Alternate generator ports; each imposes its own serialization.
            let port = GEN_PORTS[seq % 2];
            let arrival = gen_links[seq % 2].transmit(t, pkt.len());
            queue.schedule(arrival, Ev::Switch { port, pkt });
            // Pull the next departure while it is inside the window.
            let (t_next, p_next) = gen.next_packet();
            if t_next.nanos() < duration_ns {
                next_gen = Some((t_next, p_next));
            }
            continue;
        }

        let (now, ev) = queue.pop().expect("checked above");
        match ev {
            Ev::Switch { port, pkt } => {
                let seq = pkt.seq();
                for out in switch.process(pkt.bytes(), pp_rmt::PortId(port), seq) {
                    let t_out = now + SimDuration::from_nanos(out.latency_ns);
                    let mut fwd = Packet::with_seq(out.bytes, out.seq);
                    match out.port.0 {
                        SERVER_PORT => {
                            // The switch → NF leg is where the adversity
                            // engine lives (§3.3's lossy links).
                            let Some((extra, dup)) =
                                inject(adversity, Leg::ToNf, &mut fwd, &mut fault_tally)
                            else {
                                continue;
                            };
                            if dup {
                                let again = to_server.transmit(t_out, fwd.len());
                                queue.schedule(again + extra, Ev::Server { pkt: fwd.clone() });
                            }
                            let arrival = to_server.transmit(t_out, fwd.len());
                            queue.schedule(arrival + extra, Ev::Server { pkt: fwd });
                        }
                        SINK_PORT => {
                            let arrival = to_sink.transmit(t_out, fwd.len());
                            queue.schedule(arrival, Ev::Sink { pkt: fwd });
                        }
                        _ => {
                            // Mis-routed: count as other drop via switch stats.
                            fwd.bytes_mut().clear();
                        }
                    }
                }
            }
            Ev::Server { pkt } => match server.rx(now, pkt) {
                RxOutcome::Dropped => {}
                RxOutcome::Done { time, packet: Some(mut out) } => {
                    // The NF → switch leg: losses here orphan parked
                    // payloads until the evictor reclaims their slots.
                    let Some((extra, dup)) =
                        inject(adversity, Leg::FromNf, &mut out, &mut fault_tally)
                    else {
                        continue;
                    };
                    if dup {
                        let again = from_server.transmit(time, out.len());
                        queue.schedule(
                            again + extra,
                            Ev::Switch { port: SERVER_PORT, pkt: out.clone() },
                        );
                    }
                    let arrival = from_server.transmit(time, out.len());
                    queue.schedule(arrival + extra, Ev::Switch { port: SERVER_PORT, pkt: out });
                }
                RxOutcome::Done { time: _, packet: None } => {}
            },
            Ev::Sink { pkt } => {
                delivered_total += 1;
                if now.nanos() <= duration_ns {
                    goodput.record(now, pkt.len());
                    let dep = departures.get(pkt.seq() as usize).copied().unwrap_or(0);
                    latency.record(SimDuration::from_nanos(now.nanos() - dep));
                }
            }
        }
    }

    // --- health accounting ---
    let counters = control.as_ref().map(|c| c.counters(&switch));
    let sstats = server.stats();
    let swstats = switch.stats();
    let premature = counters.map(|c| c.premature_evictions + c.crc_fail).unwrap_or(0);
    let explicit_consumed = counters.map(|c| c.explicit_drops).unwrap_or(0);
    // Explicit-drop notifications and consumed duplicate merges are extra
    // packets the switch absorbs by design; exclude them from the
    // "program drops" that indicate real loss.
    let dup_consumed = counters.map(|c| c.dup_merge).unwrap_or(0);
    let program_drops_other =
        swstats.dropped_by_program.saturating_sub(premature + explicit_consumed + dup_consumed);
    let health = HealthTracker {
        offered: gen.generated(),
        delivered: delivered_total,
        intended_drops: sstats.nf_dropped,
        ring_drops: sstats.ring_drops,
        premature_eviction_drops: premature,
        // Injected losses (drops + blackouts) count as unintended: the
        // sweep's whole point is to watch health degrade with adversity.
        // (With duplication, `in_flight` can go slightly negative —
        // baseline duplicates are delivered twice but offered once.)
        other_drops: swstats.parse_errors
            + swstats.dropped_no_route
            + swstats.dropped_recirc_limit
            + program_drops_other
            + fault_tally.lost(),
    };
    // The conformance oracle: whatever the network did, the counters must
    // balance against the slots actually occupied (no leaks, no
    // double-frees). On a violation the flight recorder's recent events
    // are dumped as JSONL — the forensic trail for the offending packets.
    let occupancy = control.as_ref().map(|ctl| ctl.occupancy(&switch)).unwrap_or(0);
    let (oracle_violations, flight_dump) = match &counters {
        Some(c) => {
            let report = payloadpark::oracle::check_counters(c, occupancy);
            let dump = payloadpark::oracle::flight_dump(&report, switch.recorder());
            (report.violations().to_vec(), dump)
        }
        None => (Vec::new(), None),
    };

    // Deliveries after the window closed were queued somewhere at cutoff.
    let backlog_pkts = delivered_total - goodput.delivered();

    RunReport {
        send_gbps: config.rate_gbps,
        goodput_gbps: goodput.goodput_gbps(duration_ns),
        throughput_gbps: goodput.throughput_gbps(duration_ns),
        rate_mpps: goodput.rate_mpps(duration_ns),
        avg_latency_us: latency.avg_us(),
        jitter_us: latency.jitter_us(),
        p99_latency_us: latency.percentile_us(0.99),
        pcie_gbps: server.pcie_achieved_gbps(SimTime(duration_ns)),
        health,
        backlog_pkts,
        counters,
        occupancy,
        server_stats: sstats,
        switch_stats: swstats,
        fault_tally,
        latency,
        oracle_violations,
        flight_dump,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_server() -> ServerProfile {
        ServerProfile { jitter_frac: 0.0, modulation_amplitude: 0.0, ..Default::default() }
    }

    fn quick(mode: DeployMode, rate: f64) -> RunReport {
        run(&TestbedConfig {
            nic_gbps: 10.0,
            rate_gbps: rate,
            sizes: SizeModel::Fixed(512),
            mix: TrafficMix::UdpOnly,
            duration: SimDuration::from_millis(2),
            chain: ChainSpec::MacSwap,
            framework: FrameworkKind::NetBricks,
            server: quiet_server(),
            flows: 16,
            seed: 3,
            mode,
            ..Default::default()
        })
    }

    #[test]
    fn baseline_delivers_everything_below_saturation() {
        let r = quick(DeployMode::Baseline, 2.0);
        assert!(r.healthy(), "{:?}", r.health);
        assert!(r.health.in_flight() < 50, "{:?}", r.health);
        assert!(r.goodput_gbps > 0.0);
        assert!(r.avg_latency_us > 0.0);
        assert!(r.counters.is_none());
    }

    #[test]
    fn payloadpark_splits_and_merges_cleanly() {
        let r = quick(DeployMode::PayloadPark(ParkParams::default()), 2.0);
        assert!(r.healthy(), "{:?}", r.health);
        let c = r.counters.expect("park counters");
        assert!(c.splits > 0);
        assert!(c.merges > 0);
        assert!(c.functionally_equivalent(), "{c:?}");
        // 512-byte packets all exceed the 160 B minimum.
        assert_eq!(c.disabled_small_payload, 0);
    }

    #[test]
    fn goodput_equal_below_saturation_latency_not_worse() {
        let base = quick(DeployMode::Baseline, 2.0);
        let park = quick(DeployMode::PayloadPark(ParkParams::default()), 2.0);
        // Below saturation both deliver the offered load.
        assert!(
            (base.goodput_gbps - park.goodput_gbps).abs() / base.goodput_gbps < 0.02,
            "base {} park {}",
            base.goodput_gbps,
            park.goodput_gbps
        );
        // PayloadPark must not add latency (paper: improves it slightly).
        assert!(
            park.avg_latency_us <= base.avg_latency_us * 1.02,
            "park {} base {}",
            park.avg_latency_us,
            base.avg_latency_us
        );
        // And it saves PCIe bandwidth.
        assert!(park.pcie_gbps < base.pcie_gbps, "pcie {} vs {}", park.pcie_gbps, base.pcie_gbps);
    }

    #[test]
    fn overload_is_detected_as_unhealthy() {
        // MacSwap on NetBricks at 512 B: saturate the server outright.
        let mut cfg = TestbedConfig {
            nic_gbps: 40.0,
            rate_gbps: 40.0,
            sizes: SizeModel::Fixed(512),
            mix: TrafficMix::UdpOnly,
            duration: SimDuration::from_millis(4),
            chain: ChainSpec::Synthetic { cycles: 5000 },
            framework: FrameworkKind::OpenNetVm,
            server: quiet_server(),
            flows: 16,
            seed: 3,
            mode: DeployMode::Baseline,
            ..Default::default()
        };
        cfg.server.ring_capacity = 512;
        let r = run(&cfg);
        assert!(!r.healthy(), "drop rate {}", r.health.drop_rate());
        assert!(r.health.ring_drops > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = quick(DeployMode::PayloadPark(ParkParams::default()), 3.0);
        let b = quick(DeployMode::PayloadPark(ParkParams::default()), 3.0);
        assert_eq!(a.health, b.health);
        assert_eq!(a.goodput_gbps, b.goodput_gbps);
        assert_eq!(a.avg_latency_us, b.avg_latency_us);
        assert_eq!(a.fault_tally, FaultTally::default(), "no adversity by default");
        assert!(a.oracle_violations.is_empty(), "{:?}", a.oracle_violations);
    }

    fn adverse(mode: DeployMode, adversity: AdversityProfile) -> RunReport {
        run(&TestbedConfig {
            nic_gbps: 10.0,
            rate_gbps: 2.0,
            sizes: SizeModel::Fixed(512),
            duration: SimDuration::from_millis(2),
            chain: ChainSpec::MacSwap,
            server: quiet_server(),
            flows: 16,
            seed: 3,
            mode,
            adversity,
            ..Default::default()
        })
    }

    #[test]
    fn nf_leg_loss_orphans_payloads_and_the_oracle_still_balances() {
        // 20% loss on the NF → switch leg: parked payloads are orphaned
        // and only the evictor can reclaim their slots. A small table
        // (few slots) guarantees wraps inside the window.
        let params = ParkParams { sram_fraction: 0.002, expiry: 2, ..Default::default() };
        let r = adverse(DeployMode::PayloadPark(params), AdversityProfile::nf_loss(3, 0.2));
        assert!(r.fault_tally.dropped > 50, "{:?}", r.fault_tally);
        let c = r.counters.unwrap();
        assert!(c.evictions > 0, "orphaned slots must be aged out: {c:?}");
        assert!(!r.healthy(), "20% loss cannot be healthy");
        // The conformance oracle holds regardless: every split is merged,
        // evicted or still occupying a slot.
        assert!(r.oracle_violations.is_empty(), "{:?}", r.oracle_violations);
        // Loss is fully accounted (tally vs HealthTracker).
        assert!(r.health.other_drops >= r.fault_tally.lost());
    }

    #[test]
    fn adverse_runs_replay_from_their_seed() {
        let adv = AdversityProfile {
            seed: 11,
            from_nf: pp_netsim::adversity::LegProfile {
                drop: 0.1,
                duplicate: 0.1,
                reorder: 0.3,
                max_displacement: 16,
                ..Default::default()
            },
            ..Default::default()
        };
        let a = adverse(DeployMode::PayloadPark(ParkParams::default()), adv.clone());
        let b = adverse(DeployMode::PayloadPark(ParkParams::default()), adv);
        assert_eq!(a.health, b.health);
        assert_eq!(a.fault_tally, b.fault_tally);
        assert_eq!(a.counters, b.counters);
        assert!(a.fault_tally.duplicated > 0 && a.fault_tally.displaced > 0, "{:?}", a.fault_tally);
        // Duplicate ENB=1 merges were consumed exactly once each.
        let c = a.counters.unwrap();
        assert!(c.dup_merge > 0, "{c:?}");
        assert!(a.oracle_violations.is_empty(), "{:?}", a.oracle_violations);
    }

    #[test]
    fn firewall_drops_are_intended_not_unhealthy() {
        let mut cfg = TestbedConfig {
            chain: ChainSpec::FwNatBlacklist { blocked_pct: 40 },
            rate_gbps: 1.0,
            duration: SimDuration::from_millis(2),
            server: quiet_server(),
            ..Default::default()
        };
        cfg.sizes = SizeModel::Fixed(512);
        let r = run(&cfg);
        assert!(r.health.intended_drops > 0);
        assert!(r.healthy(), "{:?}", r.health);
    }

    #[test]
    fn explicit_drop_reclaims_slots() {
        let params = ParkParams { explicit_drop: true, expiry: 10, ..Default::default() };
        let cfg = TestbedConfig {
            chain: ChainSpec::FwNatBlacklist { blocked_pct: 30 },
            rate_gbps: 1.0,
            sizes: SizeModel::Fixed(512),
            duration: SimDuration::from_millis(2),
            server: quiet_server(),
            mode: DeployMode::PayloadPark(params),
            ..Default::default()
        };
        let r = run(&cfg);
        let c = r.counters.unwrap();
        assert!(c.explicit_drops > 0, "{c:?}");
        assert!(r.healthy(), "{:?}", r.health);
        // Slots of dropped packets were reclaimed by notifications, not by
        // waiting out the conservative expiry threshold.
        assert_eq!(c.splits as i64 - c.merges as i64 - c.explicit_drops as i64, c.outstanding());
    }

    #[test]
    fn enterprise_workload_mixes_split_and_small() {
        let cfg = TestbedConfig {
            rate_gbps: 3.0,
            sizes: SizeModel::Enterprise,
            duration: SimDuration::from_millis(3),
            chain: ChainSpec::FwNatLb { fw_rules: 20 },
            server: quiet_server(),
            mode: DeployMode::PayloadPark(ParkParams::default()),
            ..Default::default()
        };
        let r = run(&cfg);
        let c = r.counters.unwrap();
        assert!(c.splits > 0);
        assert!(c.disabled_small_payload > 0, "~30% of packets are small");
        let small_frac =
            c.disabled_small_payload as f64 / (c.splits + c.disabled_small_payload) as f64;
        assert!((small_frac - 0.30).abs() < 0.05, "small fraction {small_frac}");
    }
}
