//! Strict command-line grammar for the `pp-exp` binary.
//!
//! Parsing lives in the library (not the binary) so the grammar is
//! unit-testable as a pure function. The parser is strict: an unknown
//! `--flag` or a stray positional is an error, not something to ignore —
//! a typo like `--quikc` must fail loudly instead of silently running the
//! full-effort sweep.

/// Every experiment `pp-exp` accepts, in help order.
pub const EXPERIMENTS: &[&str] = &[
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "table1",
    "headline",
    "mixed",
    "throughput",
    "adversity",
    "overhead",
    "cluster",
    "all",
];

/// A parsed `pp-exp` invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cli {
    /// The experiment to run (always one of [`EXPERIMENTS`]).
    pub which: String,
    /// `--quick`: reduced test-effort sweeps.
    pub quick: bool,
    /// `--out FILE`: write the JSON series to `FILE`.
    pub out: Option<String>,
    /// `--baseline FILE`: compare against a committed snapshot.
    pub baseline: Option<String>,
    /// `--tolerance T`: regression / overhead tolerance (per-experiment default).
    pub tolerance: Option<f64>,
    /// `--telemetry FILE`: write Prometheus exposition text to `FILE`.
    pub telemetry: Option<String>,
}

/// The usage string printed alongside any parse error (exit code 2).
pub fn usage() -> String {
    format!(
        "usage: pp-exp <{}> [--quick] [--out FILE] [--baseline FILE] [--tolerance T] \
         [--telemetry FILE]",
        EXPERIMENTS.join("|")
    )
}

/// Parses the arguments after the program name. Strict: unknown flags,
/// missing flag values, unknown or repeated experiments are all errors.
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_ref();
        match arg {
            "--quick" => cli.quick = true,
            "--out" | "--baseline" | "--tolerance" | "--telemetry" => {
                let value = args
                    .get(i + 1)
                    .map(|s| s.as_ref().to_string())
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                i += 1;
                match arg {
                    "--out" => cli.out = Some(value),
                    "--baseline" => cli.baseline = Some(value),
                    "--telemetry" => cli.telemetry = Some(value),
                    _ => {
                        let t = value
                            .parse()
                            .map_err(|_| format!("--tolerance must be a number, got {value:?}"))?;
                        cli.tolerance = Some(t);
                    }
                }
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg:?}")),
            _ => {
                if !cli.which.is_empty() {
                    return Err(format!(
                        "unexpected argument {arg:?} (experiment already set to {:?})",
                        cli.which
                    ));
                }
                if !EXPERIMENTS.contains(&arg) {
                    return Err(format!("unknown experiment {arg:?}"));
                }
                cli.which = arg.to_string();
            }
        }
        i += 1;
    }
    if cli.which.is_empty() {
        return Err("missing experiment".into());
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grammar_parses() {
        let cli = parse(&[
            "throughput",
            "--quick",
            "--out",
            "series.json",
            "--baseline",
            "BENCH_fastpath.json",
            "--tolerance",
            "0.2",
            "--telemetry",
            "run.prom",
        ])
        .unwrap();
        assert_eq!(cli.which, "throughput");
        assert!(cli.quick);
        assert_eq!(cli.out.as_deref(), Some("series.json"));
        assert_eq!(cli.baseline.as_deref(), Some("BENCH_fastpath.json"));
        assert_eq!(cli.tolerance, Some(0.2));
        assert_eq!(cli.telemetry.as_deref(), Some("run.prom"));
    }

    #[test]
    fn flags_may_precede_the_experiment() {
        let cli = parse(&["--quick", "--telemetry", "t.prom", "adversity"]).unwrap();
        assert_eq!(cli.which, "adversity");
        assert!(cli.quick);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse(&["throughput", "--quikc"]).unwrap_err();
        assert!(err.contains("--quikc"), "{err}");
        // Regression: unknown flags used to be silently ignored, so a
        // typoed --quick ran the full-effort sweep.
        let err = parse(&["mixed", "--telemetri", "x.prom"]).unwrap_err();
        assert!(err.contains("--telemetri"), "{err}");
    }

    #[test]
    fn missing_flag_value_is_rejected() {
        for flag in ["--out", "--baseline", "--tolerance", "--telemetry"] {
            let err = parse(&["throughput", flag]).unwrap_err();
            assert!(err.contains("requires a value"), "{flag}: {err}");
        }
    }

    #[test]
    fn experiment_errors() {
        assert!(parse(&["fig99"]).unwrap_err().contains("unknown experiment"));
        assert!(parse::<&str>(&[]).unwrap_err().contains("missing experiment"));
        assert!(parse(&["--quick"]).unwrap_err().contains("missing experiment"));
        assert!(parse(&["fig06", "fig07"]).unwrap_err().contains("unexpected argument"));
    }

    #[test]
    fn non_numeric_tolerance_is_rejected() {
        let err = parse(&["throughput", "--tolerance", "lots"]).unwrap_err();
        assert!(err.contains("must be a number"), "{err}");
    }

    #[test]
    fn flag_values_are_not_mistaken_for_experiments() {
        // "all" as a flag value must not become the experiment.
        let cli = parse(&["--out", "all", "fig06"]).unwrap();
        assert_eq!(cli.which, "fig06");
        assert_eq!(cli.out.as_deref(), Some("all"));
    }
}
