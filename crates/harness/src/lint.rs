//! `pp-lint`: static verification of every built-in dataplane program.
//!
//! The lint targets mirror the programs the harness actually deploys —
//! the baseline L2 switch, the testbed's single-server PayloadPark
//! deployment (with and without the recirculation annex), the
//! multi-server two-slice pipe, sharded variants of a multi-slice
//! deployment, and cluster plans placing an eight-slice deployment on 2
//! and 4 switches — and run [`pp_verify`] over each. The logic lives in the
//! library so the regression tests and the `pp-lint` binary share it; the
//! binary exits non-zero when any target produces an error-severity
//! finding, which is how CI gates pushes on the static verifier.

use payloadpark::program::build_switch;
use payloadpark::shard::ShardPlan;
use payloadpark::{ParkConfig, PipePark, SliceSpec};
use pp_cluster::ClusterPlan;
use pp_rmt::ChipProfile;
use pp_verify::{check_cluster_plan, check_deployment, check_shard_plan, Report, Severity};

use crate::testbed::{GEN_PORTS, SERVER_PORT};

/// Every lint target, in `--list`/`--all` order.
pub const TARGETS: &[&str] = &[
    "baseline",
    "park",
    "park-annex",
    "park-multislice",
    "shard-2",
    "shard-4",
    "cluster-2",
    "cluster-4",
];

/// The single-server deployment the testbed runs (`testbed::run` with
/// `DeployMode::PayloadPark`), optionally with the recirculation annex.
fn testbed_park(annex: bool) -> ParkConfig {
    let chip = ChipProfile::default();
    let mut park = ParkConfig::single_server(chip, GEN_PORTS.to_vec(), SERVER_PORT, 16);
    if annex {
        park.pipes[0].annex_pipe = Some(1);
    }
    park.pipes[0].slices[0].slots = park.slots_for_sram_fraction(0.26).max(1);
    park
}

/// An `n`-slice deployment in the multiserver port layout: slice `s`
/// splits ports `4s` and `4s+1` and merges port `4s+2` (slice 0 matches
/// the testbed's `GEN_PORTS`/`SERVER_PORT`; all ports stay on pipe 0).
fn sliced_park(n: usize) -> ParkConfig {
    let chip = ChipProfile::default();
    let mut park = ParkConfig::single_server(chip, GEN_PORTS.to_vec(), SERVER_PORT, 16);
    let per_slice = (park.slots_for_sram_fraction(0.26) / n).max(1);
    park.pipes[0] = PipePark {
        pipe: 0,
        slices: (0..n)
            .map(|s| {
                let base = 4 * s as u16;
                SliceSpec {
                    name: format!("server{s}"),
                    split_ports: vec![base, base + 1],
                    merge_ports: vec![base + 2],
                    slots: per_slice,
                }
            })
            .collect(),
        annex_pipe: None,
    };
    park
}

fn sharded_reports(workers: usize) -> Vec<Report> {
    let parent = sliced_park(workers);
    let mut reports = Vec::new();
    match ShardPlan::new(&parent, workers) {
        Ok(plan) => {
            reports.push(Report::new(
                format!("shard plan ({workers} workers)"),
                check_shard_plan(&parent, &plan),
            ));
            for w in 0..plan.workers() {
                for r in check_deployment(plan.config(w)) {
                    reports.push(Report::new(format!("worker{w} {}", r.program), r.diagnostics));
                }
            }
        }
        Err(e) => reports.push(Report::new(
            format!("shard plan ({workers} workers)"),
            vec![pp_verify::Diagnostic::new(pp_verify::Code::PV002, None, e)],
        )),
    }
    reports
}

/// The cluster seed every deployment surface shares (`pp-exp cluster`,
/// the conformance tests, and these lint targets), so the lint verifies
/// the placements the experiments actually run.
const CLUSTER_SEED: u64 = 42;

fn cluster_reports(switches: usize) -> Vec<Report> {
    // The parent `pp-exp cluster` deploys: the shared 8-server slicing
    // (slice k splits port 2k, merges 2k+1 — dense enough to fit eight
    // slices on one pipe, and enough ring keys that every switch serves
    // at the shared seed).
    let parent = pp_fastpath::SlicedTestbed::new(8, 16).config();
    let mut reports = Vec::new();
    match ClusterPlan::new(&parent, switches, CLUSTER_SEED) {
        Ok(plan) => {
            reports.push(Report::new(
                format!("cluster plan ({switches} switches)"),
                check_cluster_plan(&parent, &plan),
            ));
            for &id in plan.switches() {
                let cfg = plan.config(id).expect("plan switches own slices");
                for r in check_deployment(cfg) {
                    reports.push(Report::new(format!("switch{id} {}", r.program), r.diagnostics));
                }
            }
        }
        Err(e) => reports.push(Report::new(
            format!("cluster plan ({switches} switches)"),
            vec![pp_verify::Diagnostic::new(pp_verify::Code::PV002, None, e)],
        )),
    }
    reports
}

/// Runs one lint target. Returns `None` for an unknown target name.
pub fn lint_target(name: &str) -> Option<Vec<Report>> {
    match name {
        "baseline" => {
            // The baseline L2 switch programs no MATs, so a clean (empty)
            // report doubles as a self-check that extraction works on a
            // bare pipeline.
            let chip = ChipProfile::default();
            let switch = payloadpark::program::build_baseline_switch(chip).ok()?;
            Some(
                (0..chip.pipes)
                    .map(|i| {
                        let pipe = switch.pipe(i);
                        Report::new(
                            format!("baseline pipe {i}"),
                            pp_verify::check(pipe, pipe.parser()),
                        )
                    })
                    .collect(),
            )
        }
        "park" => Some(check_deployment(&testbed_park(false))),
        "park-annex" => Some(check_deployment(&testbed_park(true))),
        "park-multislice" => {
            // Mirrors multiserver::run_pipe's two-slice deployment.
            let cfg = sliced_park(2);
            let _ = build_switch(&cfg); // same config the harness deploys
            Some(check_deployment(&cfg))
        }
        "shard-2" => Some(sharded_reports(2)),
        "shard-4" => Some(sharded_reports(4)),
        "cluster-2" => Some(cluster_reports(2)),
        "cluster-4" => Some(cluster_reports(4)),
        _ => None,
    }
}

/// The outcome of a full lint run.
#[derive(Debug)]
pub struct LintRun {
    /// Rendered text of every report, in target order.
    pub rendered: String,
    /// Total error-severity findings (non-zero fails the binary).
    pub errors: usize,
    /// Total warning-severity findings.
    pub warnings: usize,
}

/// Lints the given targets (use [`TARGETS`] for `--all`).
pub fn run_lint<S: AsRef<str>>(targets: &[S]) -> Result<LintRun, String> {
    let mut rendered = String::new();
    let mut errors = 0;
    let mut warnings = 0;
    for t in targets {
        let name = t.as_ref();
        let reports = lint_target(name).ok_or_else(|| format!("unknown target {name:?}"))?;
        rendered.push_str(&format!("# target: {name}\n"));
        for r in &reports {
            errors += r.count(Severity::Error);
            warnings += r.count(Severity::Warning);
            rendered.push_str(&r.render());
        }
        rendered.push('\n');
    }
    rendered.push_str(&format!(
        "pp-lint: {} target(s), {errors} error(s), {warnings} warning(s)\n",
        targets.len()
    ));
    Ok(LintRun { rendered, errors, warnings })
}

/// A parsed `pp-lint` invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintCli {
    /// Explicit targets, in command-line order.
    pub targets: Vec<String>,
    /// `--all`: lint every target.
    pub all: bool,
    /// `--list`: print the target names and exit.
    pub list: bool,
    /// `--out FILE`: also write the rendered report to `FILE`.
    pub out: Option<String>,
}

/// The usage string printed alongside any parse error (exit code 2).
pub fn usage() -> String {
    format!("usage: pp-lint [<{}> ...] [--all] [--list] [--out FILE]", TARGETS.join("|"))
}

/// Parses the arguments after the program name. Strict, like `pp-exp`:
/// unknown flags or targets are errors, not something to skip.
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<LintCli, String> {
    let mut cli = LintCli::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_ref();
        match arg {
            "--all" => cli.all = true,
            "--list" => cli.list = true,
            "--out" => {
                let value = args
                    .get(i + 1)
                    .map(|s| s.as_ref().to_string())
                    .ok_or_else(|| format!("{arg} requires a value"))?;
                i += 1;
                cli.out = Some(value);
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg:?}")),
            _ => {
                if !TARGETS.contains(&arg) {
                    return Err(format!("unknown target {arg:?}"));
                }
                cli.targets.push(arg.to_string());
            }
        }
        i += 1;
    }
    if !cli.list && !cli.all && cli.targets.is_empty() {
        return Err("no targets (try --all or --list)".into());
    }
    if cli.all && !cli.targets.is_empty() {
        return Err("--all conflicts with explicit targets".into());
    }
    Ok(cli)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_grammar() {
        let cli = parse(&["park", "shard-2", "--out", "report.txt"]).unwrap();
        assert_eq!(cli.targets, vec!["park", "shard-2"]);
        assert_eq!(cli.out.as_deref(), Some("report.txt"));
        assert!(parse(&["--all"]).unwrap().all);
        assert!(parse(&["--list"]).unwrap().list);
        assert!(parse(&["--quikc"]).unwrap_err().contains("--quikc"));
        assert!(parse(&["parkk"]).unwrap_err().contains("unknown target"));
        assert!(parse::<&str>(&[]).unwrap_err().contains("no targets"));
        assert!(parse(&["--all", "park"]).unwrap_err().contains("conflicts"));
        assert!(parse(&["--out"]).unwrap_err().contains("requires a value"));
    }

    #[test]
    fn all_builtin_targets_are_error_free() {
        let run = run_lint(TARGETS).unwrap();
        assert_eq!(run.errors, 0, "{}", run.rendered);
        assert_eq!(run.warnings, 0, "{}", run.rendered);
        assert!(run.rendered.contains("# target: park-annex"));
        assert!(run.rendered.contains("shard plan (4 workers)"));
        assert!(run.rendered.contains("cluster plan (4 switches)"));
    }

    #[test]
    fn cluster_targets_cover_every_switch() {
        for (target, n) in [("cluster-2", 2usize), ("cluster-4", 4)] {
            let reports = lint_target(target).unwrap();
            // One plan report plus at least one deployment report per
            // serving switch — every switch's program gets verified.
            assert!(reports.len() > n, "{target}: {} reports", reports.len());
            for id in 0..n as u32 {
                assert!(
                    reports.iter().any(|r| r.program.starts_with(&format!("switch{id} "))),
                    "{target}: switch{id} unverified"
                );
            }
        }
    }

    #[test]
    fn unknown_target_is_an_error() {
        assert!(run_lint(&["no-such-target"]).is_err());
        assert!(lint_target("no-such-target").is_none());
    }
}
