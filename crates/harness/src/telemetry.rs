//! Prometheus-text telemetry export for harness runs.
//!
//! Turns a [`RunReport`] into a [`MetricsRegistry`] — the PayloadPark
//! counter set, park-table occupancy, switch statistics and fault tally
//! via [`pp_fastpath::telemetry::dataplane_registry`] (so the DES harness
//! exports the exact same families as a scalar switch loop or the sharded
//! engine), plus the harness-level goodput and latency-percentile series —
//! and renders it with [`pp_metrics::textfmt`]. Every quantity is computed
//! from simulation state (sim-time latency, deterministic generators), so
//! a seeded run renders byte-identically; `tests/telemetry_golden.rs`
//! holds that snapshot invariant.

use crate::testbed::RunReport;
use pp_fastpath::telemetry::dataplane_registry;
use pp_metrics::{textfmt, MetricsRegistry};
use std::io;
use std::path::Path;

/// The latency quantiles the exporter renders, as `quantile` label values.
pub const LATENCY_QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

/// Builds the full telemetry registry for one run under `labels`.
pub fn registry_from_report(report: &RunReport, labels: &[(&str, &str)]) -> MetricsRegistry {
    let counters = report.counters.unwrap_or_default();
    let mut reg = dataplane_registry(
        &counters,
        &report.switch_stats,
        report.occupancy,
        &report.fault_tally,
        labels,
    );

    let gauge = |reg: &mut MetricsRegistry, name: &str, help: &str, value: f64| {
        let id = reg.gauge(name, help, labels);
        reg.set(id, value);
    };
    gauge(&mut reg, "pp_send_gbps", "Offered send rate (Gbps of wire bytes).", report.send_gbps);
    gauge(&mut reg, "pp_goodput_gbps", "Goodput in UDP-header units (Gbps).", report.goodput_gbps);
    gauge(
        &mut reg,
        "pp_throughput_gbps",
        "Conventional delivered throughput (Gbps).",
        report.throughput_gbps,
    );
    gauge(&mut reg, "pp_rate_mpps", "Delivered packet rate (Mpps).", report.rate_mpps);
    gauge(
        &mut reg,
        "pp_pcie_gbps",
        "Achieved PCIe bandwidth on the server (Gbps, both directions).",
        report.pcie_gbps,
    );
    gauge(
        &mut reg,
        "pp_backlog_pkts",
        "Packets still inside the system when the send window closed.",
        report.backlog_pkts as f64,
    );
    gauge(
        &mut reg,
        "pp_oracle_violations",
        "Conformance-oracle violations found after the run.",
        report.oracle_violations.len() as f64,
    );

    for (q, qname) in LATENCY_QUANTILES {
        let mut ql: Vec<(&str, &str)> = labels.to_vec();
        ql.push(("quantile", qname));
        let id = reg.gauge(
            "pp_latency_us",
            "End-to-end latency quantiles (microseconds, sim time).",
            &ql,
        );
        reg.set(id, report.latency.percentile_us(q));
    }
    gauge(
        &mut reg,
        "pp_latency_avg_us",
        "Average end-to-end latency (microseconds).",
        report.latency.avg_us(),
    );
    gauge(
        &mut reg,
        "pp_latency_max_us",
        "Maximum end-to-end latency (microseconds).",
        report.latency.max_us(),
    );
    reg
}

/// Renders one run as Prometheus exposition text.
pub fn render_report(report: &RunReport, labels: &[(&str, &str)]) -> String {
    textfmt::render(&registry_from_report(report, labels))
}

/// Writes a rendered registry to `path` (the `--telemetry FILE.prom` sink).
pub fn write_prom(path: &Path, registry: &MetricsRegistry) -> io::Result<()> {
    std::fs::write(path, textfmt::render(registry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{run, DeployMode, ParkParams, TestbedConfig};
    use pp_netsim::time::SimDuration;
    use pp_trafficgen::gen::{SizeModel, TrafficMix};

    fn quick_report() -> RunReport {
        run(&TestbedConfig {
            rate_gbps: 2.0,
            sizes: SizeModel::Fixed(512),
            mix: TrafficMix::UdpOnly,
            duration: SimDuration::from_millis(1),
            flows: 16,
            seed: 7,
            mode: DeployMode::PayloadPark(ParkParams::default()),
            ..Default::default()
        })
    }

    #[test]
    fn report_registry_carries_harness_series() {
        let report = quick_report();
        let reg = registry_from_report(&report, &[("path", "des")]);
        let labels = [("path", "des")];
        assert_eq!(
            reg.get("pp_goodput_gbps", &labels).unwrap().value(),
            report.goodput_gbps,
            "goodput gauge mirrors the report"
        );
        assert_eq!(
            reg.get("pp_splits_total", &labels).unwrap().value(),
            report.counters.unwrap().splits as f64
        );
        let p99 = reg.get("pp_latency_us", &[("path", "des"), ("quantile", "0.99")]).unwrap();
        assert_eq!(p99.value(), report.latency.percentile_us(0.99));
        let text = render_report(&report, &labels);
        assert!(text.contains("# TYPE pp_splits_total counter"), "{text}");
        assert!(text.contains("pp_latency_us{path=\"des\",quantile=\"0.5\"}"), "{text}");
    }
}
