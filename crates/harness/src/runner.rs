//! Peak-goodput search (the paper's measurement methodology, §6.1).
//!
//! "We consider the system to be healthy when the packet drop rate is below
//! 0.1%; we use this threshold to measure peak goodput." The runner scans
//! the send rate upward over a grid, then bisects between the last healthy
//! and first unhealthy rates.

use crate::testbed::{run, RunReport, TestbedConfig};

/// Result of a peak search.
#[derive(Debug, Clone)]
pub struct PeakResult {
    /// Highest healthy send rate found (Gbps).
    pub peak_send_gbps: f64,
    /// The report at that rate.
    pub report: RunReport,
}

/// Finds the peak healthy send rate in `[lo, hi]` Gbps.
///
/// `coarse_steps` grid probes, then `refine_steps` bisection rounds.
/// Returns the last healthy run (at `lo` if even that is unhealthy —
/// callers can check `report.healthy()`).
pub fn find_peak_goodput(
    config: &TestbedConfig,
    lo: f64,
    hi: f64,
    coarse_steps: usize,
    refine_steps: usize,
) -> PeakResult {
    assert!(lo > 0.0 && hi > lo, "bad search range");
    assert!(coarse_steps >= 2, "need at least two grid points");

    let at = |rate: f64| {
        let mut c = config.clone();
        c.rate_gbps = rate;
        run(&c)
    };

    let mut best: Option<(f64, RunReport)> = None;
    let mut first_bad: Option<f64> = None;
    for i in 0..coarse_steps {
        let rate = lo + (hi - lo) * i as f64 / (coarse_steps - 1) as f64;
        let r = at(rate);
        if r.healthy() {
            best = Some((rate, r));
        } else {
            first_bad = Some(rate);
            break;
        }
    }

    let (mut good_rate, mut good_report) = match best {
        Some(b) => b,
        None => {
            // Even the lowest rate is unhealthy; report it as-is.
            let r = at(lo);
            return PeakResult { peak_send_gbps: lo, report: r };
        }
    };
    let mut bad_rate = match first_bad {
        Some(b) => b,
        None => {
            // Healthy across the whole range.
            return PeakResult { peak_send_gbps: good_rate, report: good_report };
        }
    };

    for _ in 0..refine_steps {
        let mid = (good_rate + bad_rate) / 2.0;
        let r = at(mid);
        if r.healthy() {
            good_rate = mid;
            good_report = r;
        } else {
            bad_rate = mid;
        }
    }

    PeakResult { peak_send_gbps: good_rate, report: good_report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{ChainSpec, DeployMode, FrameworkKind};
    use pp_netsim::time::SimDuration;
    use pp_nf::server::ServerProfile;
    use pp_trafficgen::gen::SizeModel;

    fn cfg() -> TestbedConfig {
        TestbedConfig {
            nic_gbps: 10.0,
            rate_gbps: 1.0,
            sizes: SizeModel::Fixed(512),
            mix: pp_trafficgen::gen::TrafficMix::UdpOnly,
            duration: SimDuration::from_millis(12),
            chain: ChainSpec::Synthetic { cycles: 2000 },
            framework: FrameworkKind::OpenNetVm,
            server: ServerProfile {
                jitter_frac: 0.0,
                modulation_amplitude: 0.0,
                ring_capacity: 2048,
                ..Default::default()
            },
            flows: 16,
            seed: 5,
            mode: DeployMode::Baseline,
            ..Default::default()
        }
    }

    #[test]
    fn finds_a_peak_between_bounds() {
        // Synthetic 2000-cycle NF on OpenNetVM at 512 B:
        // µ ≈ 2.3e9 / (150 + 2000 + 0.6·512) ≈ 0.94 Mpps ≈ 3.85 Gbps.
        let peak = find_peak_goodput(&cfg(), 1.0, 10.0, 6, 3);
        assert!(peak.report.healthy());
        assert!((2.5..5.5).contains(&peak.peak_send_gbps), "peak {}", peak.peak_send_gbps);
    }

    #[test]
    fn fully_healthy_range_returns_hi() {
        let peak = find_peak_goodput(&cfg(), 0.5, 2.0, 4, 2);
        assert_eq!(peak.peak_send_gbps, 2.0);
        assert!(peak.report.healthy());
    }

    #[test]
    fn hopeless_range_returns_lo_unhealthy() {
        let mut c = cfg();
        c.chain = ChainSpec::Synthetic { cycles: 500_000 };
        let peak = find_peak_goodput(&c, 5.0, 10.0, 3, 1);
        assert_eq!(peak.peak_send_gbps, 5.0);
        assert!(!peak.report.healthy());
    }

    #[test]
    #[should_panic(expected = "bad search range")]
    fn bad_range_panics() {
        find_peak_goodput(&cfg(), 5.0, 5.0, 3, 1);
    }
}
