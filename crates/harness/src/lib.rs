//! End-to-end testbed and experiment runners.
//!
//! [`testbed`] wires the full Fig. 5 topology into one deterministic
//! discrete-event simulation: traffic generator (two ports) → RMT switch
//! (baseline L2 or PayloadPark) → NF server → switch → sink, with link
//! serialization, switch pipeline latency, PCIe DMA and FIFO server
//! queueing. [`multiserver`] extends it to two memory slices / two servers
//! per pipe for the 8-server experiment (§6.2.3).
//!
//! [`runner`] provides the paper's peak-goodput methodology: raise the send
//! rate until the 0.1 % unintended-drop health criterion fails (§6.1), and
//! report the last healthy rate.
//!
//! [`experiments`] contains one runner per figure/table of the paper's
//! evaluation; each returns a [`pp_metrics::Series`] whose rendered table is
//! this repository's equivalent of the figure.

pub mod bench_gate;
pub mod cli;
pub mod experiments;
pub mod fuzz;
pub mod lint;
pub mod multiserver;
pub mod runner;
pub mod telemetry;
pub mod testbed;

pub use runner::{find_peak_goodput, PeakResult};
pub use testbed::{ChainSpec, DeployMode, FrameworkKind, ParkParams, RunReport, TestbedConfig};
