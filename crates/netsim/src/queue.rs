//! Finite drop-tail FIFO queues.
//!
//! Used for NIC receive rings and software queues in the NF-server model.
//! When the ring is full the packet is dropped at the tail — this is the
//! "packet drops at the NF server NIC" behaviour the paper observes once a
//! deployment becomes compute-bound (§6.3.3).

use std::collections::VecDeque;

/// Statistics kept per queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted.
    pub enqueued: u64,
    /// Items rejected because the queue was full.
    pub dropped: u64,
    /// Items removed.
    pub dequeued: u64,
    /// Largest occupancy observed.
    pub high_watermark: usize,
}

/// A bounded FIFO with drop-tail semantics.
#[derive(Debug, Clone)]
pub struct DropTailQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    stats: QueueStats,
}

impl<T> DropTailQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// `capacity` of zero is a configuration error and panics.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DropTailQueue {
            items: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            stats: QueueStats::default(),
        }
    }

    /// Attempts to enqueue; returns the item back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.stats.dropped += 1;
            return Err(item);
        }
        self.items.push_back(item);
        self.stats.enqueued += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest item.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.stats.dequeued += 1;
        }
        item
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.items.clear();
        self.stats = QueueStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = DropTailQueue::new(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn drops_at_capacity() {
        let mut q = DropTailQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.stats().enqueued, 2);
        // Draining frees space again.
        assert_eq!(q.pop(), Some(1));
        q.push(4).unwrap();
        assert_eq!(q.stats().enqueued, 3);
    }

    #[test]
    fn high_watermark_tracks_peak() {
        let mut q = DropTailQueue::new(10);
        for i in 0..7 {
            q.push(i).unwrap();
        }
        for _ in 0..5 {
            q.pop();
        }
        q.push(99).unwrap();
        assert_eq!(q.stats().high_watermark, 7);
    }

    #[test]
    fn reset_clears_everything() {
        let mut q = DropTailQueue::new(2);
        q.push(1).unwrap();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.stats(), QueueStats::default());
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = DropTailQueue::<u8>::new(0);
    }
}
