//! Simulation time: a nanosecond clock and bandwidth conversions.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in nanoseconds since run start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since run start.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since run start as a float (for rate computations).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to nanoseconds.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (the paper reports latency in µs).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

/// A link or bus bandwidth.
///
/// Stored in bits per second; constructors cover the units used in the
/// paper (10 GE, 40 GE NICs, 100 Gbps switch ports, PCIe gen3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// From bits per second.
    pub fn bps(b: u64) -> Self {
        Bandwidth(b)
    }

    /// From gigabits per second.
    pub fn gbps(g: f64) -> Self {
        Bandwidth((g * 1e9).round() as u64)
    }

    /// Bits per second.
    pub fn as_bps(self) -> u64 {
        self.0
    }

    /// Gigabits per second as a float.
    pub fn as_gbps(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` at this bandwidth.
    ///
    /// Rounds up so back-to-back transmissions can never exceed line rate.
    pub fn serialization_delay(self, bytes: usize) -> SimDuration {
        debug_assert!(self.0 > 0, "zero bandwidth");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        SimDuration(ns as u64)
    }

    /// Packets per second of `bytes`-sized packets at line rate.
    pub fn packets_per_sec(self, bytes: usize) -> f64 {
        self.0 as f64 / (bytes as f64 * 8.0)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}Gbps", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors() {
        assert_eq!(SimTime::from_micros(3).nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_secs(2).as_secs_f64(), 2.0);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_micros(5).nanos(), 5_000);
        assert_eq!(SimDuration::from_millis(5).nanos(), 5_000_000);
        assert_eq!(SimDuration::from_secs(5).nanos(), 5_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros(1500).as_micros_f64(), 1500.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t, SimTime::from_micros(15));
        let mut t2 = t;
        t2 += SimDuration::from_micros(5);
        assert_eq!(t2, SimTime::from_micros(20));
        assert_eq!(t2.since(t), SimDuration::from_micros(5));
        assert_eq!(t.since(t2), SimDuration::ZERO); // saturating
        assert_eq!(
            SimDuration::from_micros(7) - SimDuration::from_micros(3),
            SimDuration::from_micros(4)
        );
    }

    #[test]
    fn serialization_delay_matches_line_rate() {
        // 1500 bytes at 10 Gbps = 1.2 µs.
        let d = Bandwidth::gbps(10.0).serialization_delay(1500);
        assert_eq!(d.nanos(), 1200);
        // 64 bytes at 40 Gbps = 12.8 ns, rounded up to 13.
        let d = Bandwidth::gbps(40.0).serialization_delay(64);
        assert_eq!(d.nanos(), 13);
    }

    #[test]
    fn serialization_delay_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> ceil.
        let d = Bandwidth::bps(3).serialization_delay(1);
        assert_eq!(d.nanos(), 2_666_666_667);
    }

    #[test]
    fn packets_per_sec() {
        // Paper §1: 10 Mpps of 500-byte packets saturates 40 Gbps.
        let pps = Bandwidth::gbps(40.0).packets_per_sec(500);
        assert!((pps - 10_000_000.0).abs() < 1.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000000s");
        assert_eq!(SimDuration::from_micros(32).to_string(), "32.000us");
        assert_eq!(Bandwidth::gbps(10.0).to_string(), "10.00Gbps");
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Bandwidth::gbps(1.0).as_bps(), 1_000_000_000);
        assert_eq!(Bandwidth::bps(2_500_000_000).as_gbps(), 2.5);
    }
}
