//! Deterministic discrete-event network-simulation substrate.
//!
//! The PayloadPark paper evaluates on a hardware testbed (PktGen server,
//! Tofino switch, NF server over 10/40 GE NICs). This crate provides the
//! simulation primitives that stand in for that hardware:
//!
//! * [`time`] — nanosecond simulation clock and rate conversions;
//! * [`event`] — a stable-ordered event queue (the heart of the DES);
//! * [`link`] — point-to-point links with serialization + propagation delay
//!   and transmitter back-pressure;
//! * [`queue`] — finite drop-tail FIFOs (NIC rings, switch queues);
//! * [`pcie`] — a PCIe bus model with per-transaction overhead, matching the
//!   paper's PCIe-bandwidth measurements (§6.1, Fig. 9);
//! * [`rng`] — seeded RNG streams so every run is a pure function of
//!   (config, seed);
//! * [`fault`] — probabilistic drop/corrupt injection (in the spirit of the
//!   smoltcp examples' `--drop-chance`/`--corrupt-chance` options);
//! * [`adversity`] — the deterministic adversity engine: seeded, replayable
//!   loss/reorder/duplication/truncation/blackout scenarios whose per-packet
//!   decisions are pure functions of `(seed, leg, seq)`, so every execution
//!   path sees identical misfortune;
//! * [`trace`] — a bounded in-memory trace log for debugging runs.
//!
//! Design note: simulation is CPU-bound and must be reproducible, so the
//! substrate is fully synchronous — no async runtime, no threads. The
//! multi-server experiment parallelises *across* independent simulations.

pub mod adversity;
pub mod event;
pub mod fault;
pub mod link;
pub mod pcie;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use adversity::{
    internal_leg_protected_prefix, AdversityProfile, FaultPlan, FaultTally, Leg, LegProfile,
    SeqWindow,
};
pub use event::EventQueue;
pub use fault::FaultInjector;
pub use link::Link;
pub use pcie::PcieBus;
pub use queue::DropTailQueue;
pub use rng::DetRng;
pub use time::{Bandwidth, SimDuration, SimTime};
pub use trace::Trace;
