//! Point-to-point link model.
//!
//! A link has a bandwidth and a propagation delay. The transmitter is
//! serial: a new packet cannot start serializing before the previous one
//! finished (back-pressure), so offered load beyond line rate accumulates
//! transmitter queueing delay — this produces the latency cliff at link
//! saturation seen in the paper's Fig. 7/16 baselines.

use crate::time::{Bandwidth, SimDuration, SimTime};

/// Statistics kept per link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets accepted for transmission.
    pub packets: u64,
    /// Bytes accepted for transmission.
    pub bytes: u64,
    /// Nanoseconds the transmitter spent busy.
    pub busy_ns: u64,
}

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    bandwidth: Bandwidth,
    propagation: SimDuration,
    /// Time at which the transmitter becomes free.
    tx_free_at: SimTime,
    stats: LinkStats,
}

impl Link {
    /// Creates a link with the given line rate and propagation delay.
    pub fn new(bandwidth: Bandwidth, propagation: SimDuration) -> Self {
        Link { bandwidth, propagation, tx_free_at: SimTime::ZERO, stats: LinkStats::default() }
    }

    /// The link's line rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// The link's propagation delay.
    pub fn propagation(&self) -> SimDuration {
        self.propagation
    }

    /// Transmits `bytes` starting no earlier than `now`; returns the time
    /// the last bit arrives at the receiver.
    ///
    /// If the transmitter is still busy with a previous packet, transmission
    /// is delayed until it frees up (FIFO, infinite transmitter queue — use
    /// [`crate::queue::DropTailQueue`] in front for finite buffers).
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let start = now.max(self.tx_free_at);
        let ser = self.bandwidth.serialization_delay(bytes);
        let tx_done = start + ser;
        self.tx_free_at = tx_done;
        self.stats.packets += 1;
        self.stats.bytes += bytes as u64;
        self.stats.busy_ns += ser.nanos();
        tx_done + self.propagation
    }

    /// Time at which the transmitter can next start serializing.
    pub fn tx_free_at(&self) -> SimTime {
        self.tx_free_at
    }

    /// The transmitter queueing delay a packet offered at `now` would see.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.tx_free_at.since(now)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Average utilization over `[0, now]` (busy time / wall time).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.nanos() == 0 {
            return 0.0;
        }
        self.stats.busy_ns as f64 / now.nanos() as f64
    }

    /// Resets counters and the transmitter state (for warm-up discard).
    pub fn reset(&mut self, now: SimTime) {
        self.stats = LinkStats::default();
        self.tx_free_at = self.tx_free_at.max(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_10g() -> Link {
        Link::new(Bandwidth::gbps(10.0), SimDuration::from_nanos(500))
    }

    #[test]
    fn single_packet_delay() {
        let mut l = link_10g();
        // 1250 bytes at 10 Gbps = 1 µs serialization + 500 ns propagation.
        let arrival = l.transmit(SimTime(0), 1250);
        assert_eq!(arrival, SimTime(1_500));
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = link_10g();
        let a1 = l.transmit(SimTime(0), 1250);
        let a2 = l.transmit(SimTime(0), 1250);
        // Second packet waits for the first's serialization.
        assert_eq!(a1, SimTime(1_500));
        assert_eq!(a2, SimTime(2_500));
        assert_eq!(l.backlog(SimTime(0)), SimDuration(2_000));
    }

    #[test]
    fn idle_gap_resets_backlog() {
        let mut l = link_10g();
        l.transmit(SimTime(0), 1250);
        // Offered well after the transmitter went idle.
        let arrival = l.transmit(SimTime(10_000), 1250);
        assert_eq!(arrival, SimTime(11_500));
        assert_eq!(l.backlog(SimTime(12_000)), SimDuration::ZERO);
    }

    #[test]
    fn stats_accumulate() {
        let mut l = link_10g();
        l.transmit(SimTime(0), 1000);
        l.transmit(SimTime(0), 500);
        let s = l.stats();
        assert_eq!(s.packets, 2);
        assert_eq!(s.bytes, 1500);
        assert_eq!(s.busy_ns, 1200);
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let mut l = link_10g();
        l.transmit(SimTime(0), 1250); // busy 1 µs
        assert!((l.utilization(SimTime(2_000)) - 0.5).abs() < 1e-9);
        assert_eq!(l.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn offered_load_at_line_rate_never_exceeds_capacity() {
        let mut l = Link::new(Bandwidth::gbps(10.0), SimDuration::ZERO);
        // Offer exactly line rate: 1250-byte packets every 1 µs.
        let mut last = SimTime::ZERO;
        for i in 0..1000u64 {
            last = l.transmit(SimTime(i * 1000), 1250);
        }
        // The last packet finishes exactly at 1000 µs: no drift, no backlog.
        assert_eq!(last, SimTime(1_000_000));
    }

    #[test]
    fn reset_clears_stats_but_keeps_transmitter_state() {
        let mut l = link_10g();
        l.transmit(SimTime(0), 12500); // busy until 10 µs
        l.reset(SimTime(5_000));
        assert_eq!(l.stats().packets, 0);
        // Transmitter is still busy from the pre-reset packet.
        assert!(l.tx_free_at() > SimTime(5_000));
    }

    #[test]
    fn accessors() {
        let l = link_10g();
        assert_eq!(l.bandwidth(), Bandwidth::gbps(10.0));
        assert_eq!(l.propagation(), SimDuration::from_nanos(500));
    }
}
