//! The adversity engine: deterministic, replayable network misbehaviour.
//!
//! The paper's evictor exists because parked payloads are orphaned when
//! packets are "dropped by NFs … or lost by lossy links and other
//! components" (§3.3). This module makes that adversity a first-class,
//! scriptable subsystem: an [`AdversityProfile`] describes what the
//! internal switch ↔ NF-server legs do to packets — loss, bounded
//! reordering, duplication, truncation, bit corruption, delay bursts and
//! scripted blackout windows — and every per-packet decision is a **pure
//! function of `(seed, leg, packet sequence number)`**.
//!
//! That purity is the load-bearing property: the same profile applied to
//! the same traffic produces the same faults no matter *which* execution
//! path processes the packets — the scalar [`SwitchModel`] loop, the
//! sharded `pp_fastpath` engine at any worker count, or the
//! discrete-event harness — so a whole adversarial scenario replays from
//! a single `u64` seed, and the conformance oracle can compare execution
//! paths under identical misfortune.
//!
//! [`SwitchModel`]: ../../pp_rmt/switch/struct.SwitchModel.html

use crate::rng::DetRng;
use pp_packet::ppark::PAYLOADPARK_HEADER_LEN;
use pp_packet::ParsedPacket;

/// Nanoseconds of extra latency one displacement slot is worth on the
/// timed (discrete-event) paths; wave-based paths use the displacement
/// directly as a sort-key offset.
pub const DISPLACEMENT_DELAY_NS: u64 = 1_000;

/// Which internal leg a packet is traversing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Leg {
    /// Switch → NF server (post-Split header packets).
    ToNf,
    /// NF server → switch (pre-Merge header packets).
    FromNf,
}

/// A half-open window `[from, to)` of generator sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqWindow {
    /// First sequence number inside the window.
    pub from: u64,
    /// First sequence number past the window.
    pub to: u64,
}

impl SeqWindow {
    /// Whether `seq` falls inside the window.
    pub fn contains(&self, seq: u64) -> bool {
        self.from <= seq && seq < self.to
    }
}

/// A periodic burst of delayed packets: in every cycle of `period`
/// sequence numbers, the first `len` are held back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayBurst {
    /// Cycle length in sequence numbers.
    pub period: u64,
    /// Sequence numbers per cycle that are delayed.
    pub len: u64,
    /// How many stream positions a held packet is displaced on wave-based
    /// paths (it also earns `DISPLACEMENT_DELAY_NS` each on timed paths).
    pub hold: u64,
    /// Extra latency on timed paths, in nanoseconds.
    pub delay_ns: u64,
}

/// The scenario knobs for one leg. All probabilities are per packet.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LegProfile {
    /// Probability of silently dropping a packet.
    pub drop: f64,
    /// Probability of delivering a packet twice (the duplicate arrives
    /// immediately after the original, same sequence number).
    pub duplicate: f64,
    /// Probability of cutting a random number of tail bytes (never into
    /// the protected header + shim prefix).
    pub truncate: f64,
    /// Probability of flipping one random bit.
    pub corrupt: f64,
    /// Allow corruption to hit the protected prefix (stack headers and the
    /// PayloadPark shim). Off by default: a flipped tag bit aliases
    /// another slot, which is a *forgery* scenario, not a lossy link.
    pub corrupt_shim: bool,
    /// Probability of displacing a packet later in the stream.
    pub reorder: f64,
    /// Largest displacement (in sequence-number positions) `reorder` may
    /// apply; a displaced packet never overtakes one more than this far
    /// ahead of it.
    pub max_displacement: u64,
    /// Optional periodic delay bursts.
    pub delay: Option<DelayBurst>,
    /// Scripted blackout windows: every packet whose sequence number falls
    /// in a window is dropped on this leg.
    pub blackouts: Vec<SeqWindow>,
}

impl LegProfile {
    /// A leg that never interferes.
    pub fn none() -> Self {
        Self::default()
    }

    /// Pure loss at `rate`.
    pub fn loss(rate: f64) -> Self {
        LegProfile { drop: rate, ..Default::default() }
    }

    /// True when this leg can never touch a packet.
    pub fn is_noop(&self) -> bool {
        self.drop <= 0.0
            && self.duplicate <= 0.0
            && self.truncate <= 0.0
            && self.corrupt <= 0.0
            && self.reorder <= 0.0
            && self.delay.is_none()
            && self.blackouts.is_empty()
    }

    /// True when the leg can change packet order (wave appliers only sort
    /// when this holds).
    pub fn reorders(&self) -> bool {
        (self.reorder > 0.0 && self.max_displacement > 0) || self.delay.is_some_and(|b| b.hold > 0)
    }
}

/// A complete, replayable adversity scenario: what each internal leg does,
/// all derived from one seed.
///
/// Construct with struct-update syntax and replay by reusing the seed:
///
/// ```
/// use pp_netsim::adversity::{AdversityProfile, Leg, LegProfile};
///
/// let adv = AdversityProfile {
///     seed: 7,
///     from_nf: LegProfile { drop: 0.1, reorder: 0.2, max_displacement: 16, ..LegProfile::none() },
///     ..AdversityProfile::disabled()
/// };
/// // Per-packet decisions are a pure function of (seed, leg, seq):
/// assert_eq!(adv.plan(Leg::FromNf, 42), adv.plan(Leg::FromNf, 42));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdversityProfile {
    /// The scenario seed; every fault decision derives from it.
    pub seed: u64,
    /// Faults on the switch → NF-server leg.
    pub to_nf: LegProfile,
    /// Faults on the NF-server → switch leg.
    pub from_nf: LegProfile,
}

impl AdversityProfile {
    /// A profile that never interferes.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Pure loss at `rate` on the NF → switch leg — the scenario that
    /// orphans parked payloads (§3.3).
    pub fn nf_loss(seed: u64, rate: f64) -> Self {
        AdversityProfile { seed, from_nf: LegProfile::loss(rate), ..Default::default() }
    }

    /// True when neither leg can touch a packet.
    pub fn is_disabled(&self) -> bool {
        self.to_nf.is_noop() && self.from_nf.is_noop()
    }

    /// The profile of one leg.
    pub fn leg(&self, leg: Leg) -> &LegProfile {
        match leg {
            Leg::ToNf => &self.to_nf,
            Leg::FromNf => &self.from_nf,
        }
    }

    /// The fault plan for one packet on one leg — a pure function of
    /// `(self.seed, leg, seq)`, independent of processing order, shard
    /// assignment or batch boundaries.
    pub fn plan(&self, leg: Leg, seq: u64) -> FaultPlan {
        let prof = self.leg(leg);
        let mut plan = FaultPlan::default();
        if prof.blackouts.iter().any(|w| w.contains(seq)) {
            plan.blackout = true;
            return plan;
        }
        if prof.is_noop() {
            return plan;
        }
        let mut rng = DetRng::from_seed(scenario_seed(self.seed, leg, seq));
        if prof.drop > 0.0 && rng.chance(prof.drop) {
            plan.drop = true;
            return plan;
        }
        if prof.duplicate > 0.0 && rng.chance(prof.duplicate) {
            plan.duplicate = true;
        }
        if prof.truncate > 0.0 && rng.chance(prof.truncate) {
            plan.truncate = Some(rng.next_f64());
        }
        if prof.corrupt > 0.0 && rng.chance(prof.corrupt) {
            plan.corrupt = Some(CorruptSpec {
                at: rng.next_f64(),
                bit: rng.gen_range(0, 8) as u8,
                include_protected: prof.corrupt_shim,
            });
        }
        if prof.reorder > 0.0 && prof.max_displacement > 0 && rng.chance(prof.reorder) {
            plan.displacement = rng.gen_range(1, prof.max_displacement + 1);
        }
        if let Some(b) = prof.delay {
            if b.period > 0 && seq % b.period < b.len {
                plan.displacement = plan.displacement.saturating_add(b.hold);
                plan.extra_delay_ns += b.delay_ns;
            }
        }
        plan.extra_delay_ns += plan.displacement * DISPLACEMENT_DELAY_NS;
        plan
    }

    /// Applies one leg's scenario to a whole wave of packets, preserving
    /// the stream semantics the equivalence oracle relies on:
    ///
    /// * every per-packet fault comes from [`AdversityProfile::plan`], so
    ///   the same packets are hit no matter how the wave is sliced;
    /// * reordering sorts (stably) by `seq + displacement`, so restricting
    ///   the reordered wave to any subsequence — a shard, a batch — yields
    ///   exactly the order that subsequence would have been given alone;
    /// * duplicates are inserted right behind their originals with the
    ///   same sequence number.
    ///
    /// `seq_of` reads a packet's sequence number, `bytes_of` exposes its
    /// wire bytes, and `protected` maps wire bytes to the length of the
    /// prefix (stack headers + shim) that truncation must preserve and
    /// corruption must avoid unless [`LegProfile::corrupt_shim`] is set.
    pub fn apply_leg<T: Clone>(
        &self,
        leg: Leg,
        wave: Vec<T>,
        seq_of: impl Fn(&T) -> u64,
        mut bytes_of: impl FnMut(&mut T) -> &mut Vec<u8>,
        protected: impl Fn(&[u8]) -> usize,
        tally: &mut FaultTally,
    ) -> Vec<T> {
        let prof = self.leg(leg);
        if prof.is_noop() {
            return wave;
        }
        let mut keyed: Vec<(u64, T)> = Vec::with_capacity(wave.len());
        for mut pkt in wave {
            let seq = seq_of(&pkt);
            let plan = self.plan(leg, seq);
            tally.seen += 1;
            if plan.blackout {
                tally.blacked_out += 1;
                continue;
            }
            if plan.drop {
                tally.dropped += 1;
                continue;
            }
            if plan.truncate.is_some() || plan.corrupt.is_some() {
                let bytes = bytes_of(&mut pkt);
                let prot = protected(bytes);
                plan.mutate(bytes, prot, tally);
            }
            if plan.displacement > 0 {
                tally.displaced += 1;
            }
            let key = seq.saturating_add(plan.displacement);
            let dup = plan.duplicate.then(|| pkt.clone());
            keyed.push((key, pkt));
            if let Some(d) = dup {
                tally.duplicated += 1;
                keyed.push((key, d));
            }
        }
        if prof.reorders() {
            // Stable: equal keys keep arrival order (duplicates stay
            // behind their originals).
            keyed.sort_by_key(|(k, _)| *k);
        }
        keyed.into_iter().map(|(_, p)| p).collect()
    }
}

/// Where a corruption bit-flip lands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptSpec {
    /// Position within the corruptible span, as a fraction in `[0, 1)`.
    pub at: f64,
    /// Which bit to flip.
    pub bit: u8,
    /// Whether the protected prefix is corruptible too.
    pub include_protected: bool,
}

/// The faults one packet suffers on one leg.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultPlan {
    /// Dropped by a scripted blackout window.
    pub blackout: bool,
    /// Dropped by random loss.
    pub drop: bool,
    /// Delivered twice.
    pub duplicate: bool,
    /// Tail truncation: fraction of the cuttable tail to remove.
    pub truncate: Option<f64>,
    /// Bit corruption.
    pub corrupt: Option<CorruptSpec>,
    /// Stream displacement (reorder + delay-burst hold), in positions.
    pub displacement: u64,
    /// Extra latency on timed paths, in nanoseconds.
    pub extra_delay_ns: u64,
}

impl FaultPlan {
    /// True when the packet never arrives.
    pub fn lost(&self) -> bool {
        self.drop || self.blackout
    }

    /// Applies the byte-level faults (truncation, corruption) in place.
    /// `protected` is the length of the prefix truncation must preserve
    /// and corruption must avoid unless the plan says otherwise.
    pub fn mutate(&self, bytes: &mut Vec<u8>, protected: usize, tally: &mut FaultTally) {
        let protected = protected.min(bytes.len());
        if let Some(frac) = self.truncate {
            let tail = bytes.len() - protected;
            if tail > 0 {
                let cut = 1 + (frac * (tail - 1) as f64) as usize;
                bytes.truncate(bytes.len() - cut.min(tail));
                tally.truncated += 1;
            }
        }
        if let Some(c) = self.corrupt {
            let lo = if c.include_protected { 0 } else { protected };
            if bytes.len() > lo {
                let span = bytes.len() - lo;
                let idx = lo + ((c.at * span as f64) as usize).min(span - 1);
                bytes[idx] ^= 1 << (c.bit & 7);
                tally.corrupted += 1;
            }
        }
    }
}

/// The protected byte prefix of an internal-leg packet: stack headers plus
/// the 7-byte PayloadPark shim. Truncation never cuts into it and
/// corruption avoids it unless `corrupt_shim` is configured; unparseable
/// packets are fully protected (nothing sensible to corrupt). The same
/// span is protected on baseline legs (which carry no shim) so that a
/// given scenario seed flips the same bytes in both deployments. The
/// probabilistic sibling is [`crate::fault::shim_span`], which protects
/// only a CRC-validated shim.
pub fn internal_leg_protected_prefix(bytes: &[u8]) -> usize {
    match ParsedPacket::parse(bytes) {
        Ok(parsed) => (parsed.offsets().payload + PAYLOADPARK_HEADER_LEN).min(bytes.len()),
        Err(_) => bytes.len(),
    }
}

/// What an adversity application actually did, for reports and replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Packets offered to an *active* (non-noop) leg injector; a disabled
    /// leg observes nothing, on every execution path.
    pub seen: u64,
    /// Packets dropped by random loss.
    pub dropped: u64,
    /// Packets dropped by blackout windows.
    pub blacked_out: u64,
    /// Duplicates inserted.
    pub duplicated: u64,
    /// Packets with tail bytes cut.
    pub truncated: u64,
    /// Packets with a bit flipped.
    pub corrupted: u64,
    /// Packets displaced later in the stream.
    pub displaced: u64,
}

impl FaultTally {
    /// Packets that never arrived (loss + blackouts).
    pub fn lost(&self) -> u64 {
        self.dropped + self.blacked_out
    }

    /// Accumulates another tally (aggregating per-shard injectors).
    pub fn add(&mut self, other: &FaultTally) {
        self.seen += other.seen;
        self.dropped += other.dropped;
        self.blacked_out += other.blacked_out;
        self.duplicated += other.duplicated;
        self.truncated += other.truncated;
        self.corrupted += other.corrupted;
        self.displaced += other.displaced;
    }

    /// The tally fields paired with stable snake_case names, for telemetry
    /// exporters.
    pub fn named(&self) -> [(&'static str, u64); 7] {
        [
            ("seen", self.seen),
            ("dropped", self.dropped),
            ("blacked_out", self.blacked_out),
            ("duplicated", self.duplicated),
            ("truncated", self.truncated),
            ("corrupted", self.corrupted),
            ("displaced", self.displaced),
        ]
    }
}

/// Mixes `(seed, leg, seq)` into an independent per-packet RNG seed
/// (splitmix64 finalizer over a leg-salted product mix).
fn scenario_seed(seed: u64, leg: Leg, seq: u64) -> u64 {
    let salt: u64 = match leg {
        Leg::ToNf => 0x9E37_79B9_7F4A_7C15,
        Leg::FromNf => 0xC2B2_AE3D_27D4_EB4F,
    };
    let mut z = seed ^ salt ^ seq.wrapping_mul(0xD6E8_FEB8_6659_FD93);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A test wave: (seq, bytes) pairs with a 4-byte "header".
    fn wave(n: u64) -> Vec<(u64, Vec<u8>)> {
        (0..n).map(|s| (s, vec![s as u8; 32])).collect()
    }

    fn apply(
        adv: &AdversityProfile,
        leg: Leg,
        w: Vec<(u64, Vec<u8>)>,
    ) -> (Vec<(u64, Vec<u8>)>, FaultTally) {
        let mut tally = FaultTally::default();
        let out = adv.apply_leg(leg, w, |p| p.0, |p| &mut p.1, |_| 4, &mut tally);
        (out, tally)
    }

    #[test]
    fn plans_are_pure_functions_of_seed_leg_seq() {
        let adv = AdversityProfile {
            seed: 9,
            from_nf: LegProfile {
                drop: 0.2,
                duplicate: 0.2,
                truncate: 0.2,
                corrupt: 0.2,
                reorder: 0.3,
                max_displacement: 10,
                ..Default::default()
            },
            ..Default::default()
        };
        for seq in 0..200 {
            assert_eq!(adv.plan(Leg::FromNf, seq), adv.plan(Leg::FromNf, seq));
        }
        // The two legs draw from independent streams.
        let adv2 = AdversityProfile { to_nf: adv.from_nf.clone(), ..adv.clone() };
        let differs = (0..200).any(|s| adv2.plan(Leg::ToNf, s) != adv2.plan(Leg::FromNf, s));
        assert!(differs, "legs must not mirror each other");
        // And a different seed gives a different scenario.
        let adv3 = AdversityProfile { seed: 10, ..adv.clone() };
        assert!((0..200).any(|s| adv3.plan(Leg::FromNf, s) != adv.plan(Leg::FromNf, s)));
    }

    #[test]
    fn disabled_profile_is_identity() {
        let adv = AdversityProfile::disabled();
        assert!(adv.is_disabled());
        let w = wave(50);
        let (out, tally) = apply(&adv, Leg::ToNf, w.clone());
        assert_eq!(out, w);
        assert_eq!(tally, FaultTally::default(), "a noop leg observes nothing");
    }

    #[test]
    fn loss_rate_is_plausible_and_replayable() {
        let adv = AdversityProfile::nf_loss(3, 0.2);
        let (out, tally) = apply(&adv, Leg::FromNf, wave(5_000));
        assert_eq!(tally.seen, 5_000);
        assert!((800..1_200).contains(&(tally.dropped as usize)), "{tally:?}");
        assert_eq!(out.len() as u64 + tally.dropped, 5_000);
        // Byte-identical replay from the same seed.
        let (out2, tally2) = apply(&adv, Leg::FromNf, wave(5_000));
        assert_eq!(out, out2);
        assert_eq!(tally, tally2);
    }

    #[test]
    fn blackout_windows_drop_exactly_their_seqs() {
        let adv = AdversityProfile {
            seed: 1,
            from_nf: LegProfile {
                blackouts: vec![SeqWindow { from: 10, to: 20 }, SeqWindow { from: 40, to: 45 }],
                ..Default::default()
            },
            ..Default::default()
        };
        let (out, tally) = apply(&adv, Leg::FromNf, wave(50));
        assert_eq!(tally.blacked_out, 15);
        assert_eq!(out.len(), 35);
        assert!(out.iter().all(|(s, _)| !(10..20).contains(s) && !(40..45).contains(s)));
    }

    #[test]
    fn duplicates_sit_behind_their_originals() {
        let adv = AdversityProfile {
            seed: 5,
            from_nf: LegProfile { duplicate: 0.5, ..Default::default() },
            ..Default::default()
        };
        let (out, tally) = apply(&adv, Leg::FromNf, wave(200));
        assert!(tally.duplicated > 50, "{tally:?}");
        assert_eq!(out.len() as u64, 200 + tally.duplicated);
        // Adjacent and byte-identical.
        let mut dups = 0;
        for pair in out.windows(2) {
            if pair[0].0 == pair[1].0 {
                assert_eq!(pair[0].1, pair[1].1);
                dups += 1;
            }
        }
        assert_eq!(dups, tally.duplicated);
    }

    #[test]
    fn reorder_displacement_is_bounded() {
        let max = 8;
        let adv = AdversityProfile {
            seed: 11,
            from_nf: LegProfile { reorder: 0.6, max_displacement: max, ..Default::default() },
            ..Default::default()
        };
        let (out, tally) = apply(&adv, Leg::FromNf, wave(500));
        assert!(tally.displaced > 100, "{tally:?}");
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_ne!(seqs, (0..500).collect::<Vec<_>>(), "must actually reorder");
        // Bounded displacement: nothing overtakes a packet more than
        // `max` sequence numbers ahead of it.
        for i in 0..seqs.len() {
            for j in i + 1..seqs.len() {
                assert!(seqs[i] <= seqs[j] + max, "seq {} before {}", seqs[i], seqs[j]);
            }
        }
    }

    #[test]
    fn restriction_to_a_subsequence_preserves_relative_order() {
        // The property the sharded engine relies on: applying the profile
        // to the whole wave, then restricting to one shard's packets,
        // gives the same order as applying it to that shard's sub-wave.
        let adv = AdversityProfile {
            seed: 21,
            from_nf: LegProfile {
                drop: 0.1,
                duplicate: 0.15,
                reorder: 0.4,
                max_displacement: 12,
                ..Default::default()
            },
            ..Default::default()
        };
        let full = wave(400);
        let shard: Vec<_> = full.iter().filter(|(s, _)| s % 4 == 1).cloned().collect();
        let (global, _) = apply(&adv, Leg::FromNf, full);
        let global_shard: Vec<_> = global.into_iter().filter(|(s, _)| s % 4 == 1).collect();
        let (local, _) = apply(&adv, Leg::FromNf, shard);
        assert_eq!(global_shard, local);
    }

    #[test]
    fn truncation_never_cuts_the_protected_prefix() {
        let adv = AdversityProfile {
            seed: 2,
            from_nf: LegProfile { truncate: 1.0, ..Default::default() },
            ..Default::default()
        };
        let (out, tally) = apply(&adv, Leg::FromNf, wave(100));
        assert_eq!(tally.truncated, 100);
        for (s, bytes) in &out {
            assert!(bytes.len() >= 4, "seq {s} cut into the protected prefix");
            assert!(bytes.len() < 32, "seq {s} not truncated");
            assert_eq!(&bytes[..4], &vec![*s as u8; 4][..]);
        }
    }

    #[test]
    fn corruption_respects_the_protected_prefix() {
        let adv = AdversityProfile {
            seed: 3,
            from_nf: LegProfile { corrupt: 1.0, ..Default::default() },
            ..Default::default()
        };
        let (out, tally) = apply(&adv, Leg::FromNf, wave(100));
        assert_eq!(tally.corrupted, 100);
        for (s, bytes) in &out {
            assert_eq!(&bytes[..4], &vec![*s as u8; 4][..], "protected prefix altered");
            let flipped: u32 = bytes[4..].iter().map(|b| (b ^ (*s as u8)).count_ones()).sum();
            assert_eq!(flipped, 1, "seq {s}: exactly one bit must flip");
        }
        // With corrupt_shim, the protected prefix is fair game too.
        let chaos = AdversityProfile {
            seed: 3,
            from_nf: LegProfile { corrupt: 1.0, corrupt_shim: true, ..Default::default() },
            ..Default::default()
        };
        let (out, _) = apply(&chaos, Leg::FromNf, wave(300));
        assert!(
            out.iter().any(|(s, b)| b[..4] != vec![*s as u8; 4][..]),
            "corrupt_shim must eventually hit the prefix"
        );
    }

    #[test]
    fn delay_bursts_hold_their_windows_back() {
        let adv = AdversityProfile {
            seed: 4,
            from_nf: LegProfile {
                delay: Some(DelayBurst { period: 20, len: 4, hold: 10, delay_ns: 5_000 }),
                ..Default::default()
            },
            ..Default::default()
        };
        let plan = adv.plan(Leg::FromNf, 41); // 41 % 20 == 1 < 4: in burst
        assert_eq!(plan.displacement, 10);
        assert_eq!(plan.extra_delay_ns, 5_000 + 10 * DISPLACEMENT_DELAY_NS);
        let calm = adv.plan(Leg::FromNf, 47);
        assert_eq!(calm.displacement, 0);
        assert_eq!(calm.extra_delay_ns, 0);
        // Burst members really land after the packets they were holding
        // behind.
        let (out, tally) = apply(&adv, Leg::FromNf, wave(40));
        assert!(tally.displaced >= 4);
        let pos_of = |seq: u64| out.iter().position(|(s, _)| *s == seq).unwrap();
        assert!(pos_of(20) > pos_of(24), "seq 20 is held past the burst");
    }

    #[test]
    fn tallies_aggregate() {
        let mut a = FaultTally { seen: 10, dropped: 2, blacked_out: 1, ..Default::default() };
        let b = FaultTally { seen: 5, dropped: 1, duplicated: 3, ..Default::default() };
        a.add(&b);
        assert_eq!(a.seen, 15);
        assert_eq!(a.dropped, 3);
        assert_eq!(a.duplicated, 3);
        assert_eq!(a.lost(), 4);
    }
}
