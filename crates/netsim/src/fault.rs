//! Probabilistic fault injection.
//!
//! Mirrors the fault-injection options of the smoltcp examples
//! (`--drop-chance`, `--corrupt-chance`): links and components can be wrapped
//! with a [`FaultInjector`] to exercise the payload evictor — the paper's
//! mechanism for reclaiming space when packets are "dropped by NFs … or lost
//! by lossy links and other components" (§3.3).

use crate::rng::DetRng;

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability of silently dropping each packet.
    pub drop_chance: f64,
    /// Probability of flipping one random bit in each surviving packet.
    pub corrupt_chance: f64,
}

/// Statistics kept by the injector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets observed.
    pub seen: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets corrupted.
    pub corrupted: u64,
}

/// The outcome of passing one packet through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver unchanged.
    Pass,
    /// Silently drop.
    Drop,
    /// Deliver; one bit was flipped in place.
    Corrupted,
}

/// A deterministic packet mangler.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: DetRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector; `rng` should be a dedicated derived stream.
    pub fn new(config: FaultConfig, rng: DetRng) -> Self {
        FaultInjector { config, rng, stats: FaultStats::default() }
    }

    /// An injector that never interferes.
    pub fn disabled() -> Self {
        Self::new(FaultConfig::default(), DetRng::from_seed(0))
    }

    /// Applies faults to `packet`; may flip a bit in place.
    pub fn apply(&mut self, packet: &mut [u8]) -> FaultOutcome {
        self.stats.seen += 1;
        if self.rng.chance(self.config.drop_chance) {
            self.stats.dropped += 1;
            return FaultOutcome::Drop;
        }
        if !packet.is_empty() && self.rng.chance(self.config.corrupt_chance) {
            let byte = self.rng.gen_range(0, packet.len() as u64) as usize;
            let bit = self.rng.gen_range(0, 8) as u8;
            packet[byte] ^= 1 << bit;
            self.stats.corrupted += 1;
            return FaultOutcome::Corrupted;
        }
        FaultOutcome::Pass
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The configuration.
    pub fn config(&self) -> FaultConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_passes_everything() {
        let mut inj = FaultInjector::disabled();
        let mut pkt = vec![0xAAu8; 64];
        for _ in 0..100 {
            assert_eq!(inj.apply(&mut pkt), FaultOutcome::Pass);
        }
        assert_eq!(pkt, vec![0xAAu8; 64]);
        assert_eq!(inj.stats(), FaultStats { seen: 100, dropped: 0, corrupted: 0 });
    }

    #[test]
    fn drop_rate_is_plausible() {
        let mut inj = FaultInjector::new(
            FaultConfig { drop_chance: 0.15, corrupt_chance: 0.0 },
            DetRng::from_seed(42),
        );
        let mut pkt = vec![0u8; 8];
        let drops = (0..10_000).filter(|_| inj.apply(&mut pkt) == FaultOutcome::Drop).count();
        assert!((1_300..1_700).contains(&drops), "drops {drops}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(
            FaultConfig { drop_chance: 0.0, corrupt_chance: 1.0 },
            DetRng::from_seed(1),
        );
        let original = vec![0x55u8; 32];
        let mut pkt = original.clone();
        assert_eq!(inj.apply(&mut pkt), FaultOutcome::Corrupted);
        let differing_bits: u32 =
            original.iter().zip(&pkt).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(differing_bits, 1);
    }

    #[test]
    fn empty_packet_never_corrupted() {
        let mut inj = FaultInjector::new(
            FaultConfig { drop_chance: 0.0, corrupt_chance: 1.0 },
            DetRng::from_seed(2),
        );
        assert_eq!(inj.apply(&mut []), FaultOutcome::Pass);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(
                FaultConfig { drop_chance: 0.3, corrupt_chance: 0.3 },
                DetRng::from_seed(seed),
            );
            let mut pkt = vec![9u8; 16];
            (0..50).map(|_| inj.apply(&mut pkt)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
