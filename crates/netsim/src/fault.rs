//! Probabilistic fault injection.
//!
//! Mirrors the fault-injection options of the smoltcp examples
//! (`--drop-chance`, `--corrupt-chance`): links and components can be wrapped
//! with a [`FaultInjector`] to exercise the payload evictor — the paper's
//! mechanism for reclaiming space when packets are "dropped by NFs … or lost
//! by lossy links and other components" (§3.3).

use crate::rng::DetRng;
use pp_packet::ppark::{PayloadParkHeader, PAYLOADPARK_HEADER_LEN};
use pp_packet::ParsedPacket;

/// Fault-injection configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Probability of silently dropping each packet.
    pub drop_chance: f64,
    /// Probability of flipping one random bit in each surviving packet.
    pub corrupt_chance: f64,
    /// Allow corruption to hit the bytes of a parked-payload shim.
    ///
    /// Off by default: on the internal NF leg every packet carries the
    /// 7-byte PayloadPark header, and a bit flipped inside its tag words
    /// aliases *another* lookup-table slot — a forged-tag scenario, not a
    /// lossy link. Real links corrupt payloads far more often than they
    /// mint consistent tags, so the injector skips an ENB=1 shim unless
    /// this is explicitly enabled.
    pub corrupt_shim: bool,
}

/// Statistics kept by the injector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Packets observed.
    pub seen: u64,
    /// Packets dropped.
    pub dropped: u64,
    /// Packets corrupted.
    pub corrupted: u64,
}

/// The outcome of passing one packet through the injector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Deliver unchanged.
    Pass,
    /// Silently drop.
    Drop,
    /// Deliver; one bit was flipped in place.
    Corrupted,
}

/// A deterministic packet mangler.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: DetRng,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector; `rng` should be a dedicated derived stream.
    pub fn new(config: FaultConfig, rng: DetRng) -> Self {
        FaultInjector { config, rng, stats: FaultStats::default() }
    }

    /// An injector that never interferes.
    pub fn disabled() -> Self {
        Self::new(FaultConfig::default(), DetRng::from_seed(0))
    }

    /// Applies faults to `packet`; may flip a bit in place.
    ///
    /// Unless [`FaultConfig::corrupt_shim`] is set, the flipped bit never
    /// lands inside a validated ENB=1 PayloadPark shim — corrupting the
    /// tag words would silently alias another slot rather than model link
    /// noise (see [`shim_span`]).
    pub fn apply(&mut self, packet: &mut [u8]) -> FaultOutcome {
        self.stats.seen += 1;
        if self.rng.chance(self.config.drop_chance) {
            self.stats.dropped += 1;
            return FaultOutcome::Drop;
        }
        if !packet.is_empty() && self.rng.chance(self.config.corrupt_chance) {
            let protected = if self.config.corrupt_shim { None } else { shim_span(packet) };
            let choices = packet.len() - protected.map_or(0, |(s, e)| e - s);
            if choices == 0 {
                return FaultOutcome::Pass;
            }
            let mut byte = self.rng.gen_range(0, choices as u64) as usize;
            if let Some((start, end)) = protected {
                if byte >= start {
                    byte += end - start;
                }
            }
            let bit = self.rng.gen_range(0, 8) as u8;
            packet[byte] ^= 1 << bit;
            self.stats.corrupted += 1;
            return FaultOutcome::Corrupted;
        }
        FaultOutcome::Pass
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The configuration.
    pub fn config(&self) -> FaultConfig {
        self.config
    }
}

/// Locates a validated ENB=1 PayloadPark shim within `packet`, returning
/// its half-open byte span. `None` when the packet does not parse, carries
/// no shim at the payload offset, or the shim's tag CRC does not verify
/// (a disabled all-zero shim is indistinguishable from payload and is not
/// protected).
pub fn shim_span(packet: &[u8]) -> Option<(usize, usize)> {
    let parsed = ParsedPacket::parse(packet).ok()?;
    let start = parsed.offsets().payload;
    let end = start + PAYLOADPARK_HEADER_LEN;
    if packet.len() < end {
        return None;
    }
    let shim = PayloadParkHeader::new_checked(&packet[start..end]).ok()?;
    (shim.enabled() && shim.verify_tag().is_ok()).then_some((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_passes_everything() {
        let mut inj = FaultInjector::disabled();
        let mut pkt = vec![0xAAu8; 64];
        for _ in 0..100 {
            assert_eq!(inj.apply(&mut pkt), FaultOutcome::Pass);
        }
        assert_eq!(pkt, vec![0xAAu8; 64]);
        assert_eq!(inj.stats(), FaultStats { seen: 100, dropped: 0, corrupted: 0 });
    }

    #[test]
    fn drop_rate_is_plausible() {
        let mut inj = FaultInjector::new(
            FaultConfig { drop_chance: 0.15, ..Default::default() },
            DetRng::from_seed(42),
        );
        let mut pkt = vec![0u8; 8];
        let drops = (0..10_000).filter(|_| inj.apply(&mut pkt) == FaultOutcome::Drop).count();
        assert!((1_300..1_700).contains(&drops), "drops {drops}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(
            FaultConfig { corrupt_chance: 1.0, ..Default::default() },
            DetRng::from_seed(1),
        );
        let original = vec![0x55u8; 32];
        let mut pkt = original.clone();
        assert_eq!(inj.apply(&mut pkt), FaultOutcome::Corrupted);
        let differing_bits: u32 =
            original.iter().zip(&pkt).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(differing_bits, 1);
    }

    #[test]
    fn empty_packet_never_corrupted() {
        let mut inj = FaultInjector::new(
            FaultConfig { corrupt_chance: 1.0, ..Default::default() },
            DetRng::from_seed(2),
        );
        assert_eq!(inj.apply(&mut []), FaultOutcome::Pass);
    }

    /// A post-Split internal-leg packet: stack headers, then a validated
    /// ENB=1 shim, then remaining payload bytes.
    fn split_leg_packet() -> Vec<u8> {
        use pp_packet::builder::UdpPacketBuilder;
        use pp_packet::ppark::{PpOpcode, PpTag};
        let mut shim_and_rest = vec![0u8; PAYLOADPARK_HEADER_LEN + 25];
        PayloadParkHeader::new_checked(&mut shim_and_rest[..])
            .unwrap()
            .write_enabled(PpOpcode::Merge, PpTag { table_index: 0x0123, generation: 0x0BEE });
        UdpPacketBuilder::new().payload(&shim_and_rest).build().into_bytes()
    }

    #[test]
    fn corruption_never_touches_a_validated_shim_by_default() {
        // Regression: a bit flipped inside the shim's tag words would
        // alias another lookup-table slot. With the default config the
        // shim bytes must survive any number of corruption draws.
        let pristine = split_leg_packet();
        let (start, end) = shim_span(&pristine).expect("shim present");
        assert_eq!(end - start, PAYLOADPARK_HEADER_LEN);
        let mut inj = FaultInjector::new(
            FaultConfig { corrupt_chance: 1.0, ..Default::default() },
            DetRng::from_seed(6),
        );
        for _ in 0..500 {
            let mut pkt = pristine.clone();
            assert_eq!(inj.apply(&mut pkt), FaultOutcome::Corrupted);
            assert_eq!(&pkt[start..end], &pristine[start..end], "shim bytes altered");
        }
    }

    #[test]
    fn corrupt_shim_opt_in_reaches_the_tag_words() {
        let pristine = split_leg_packet();
        let (start, end) = shim_span(&pristine).expect("shim present");
        let mut inj = FaultInjector::new(
            FaultConfig { corrupt_chance: 1.0, corrupt_shim: true, ..Default::default() },
            DetRng::from_seed(6),
        );
        let mut hit = false;
        for _ in 0..500 {
            let mut pkt = pristine.clone();
            inj.apply(&mut pkt);
            hit |= pkt[start..end] != pristine[start..end];
        }
        assert!(hit, "explicitly configured shim corruption never landed");
    }

    #[test]
    fn shim_span_ignores_disabled_and_corrupt_shims() {
        // No shim at all (plain payload).
        use pp_packet::builder::UdpPacketBuilder;
        let plain = UdpPacketBuilder::new().payload(&[0xAA; 40]).build().into_bytes();
        assert_eq!(shim_span(&plain), None);
        // A valid shim whose CRC was already damaged is not protected —
        // it no longer names a real slot.
        let mut forged = split_leg_packet();
        let (start, _) = shim_span(&forged).unwrap();
        forged[start + 1] ^= 0x40;
        assert_eq!(shim_span(&forged), None);
        // Unparseable bytes are not protected either.
        assert_eq!(shim_span(&[0u8; 5]), None);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(
                FaultConfig { drop_chance: 0.3, corrupt_chance: 0.3, ..Default::default() },
                DetRng::from_seed(seed),
            );
            let mut pkt = vec![9u8; 16];
            (0..50).map(|_| inj.apply(&mut pkt)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }
}
