//! A bounded in-memory trace log.
//!
//! Components can record timestamped notes during a run; the log keeps only
//! the most recent `capacity` entries so multi-second simulations do not
//! accumulate unbounded memory. Intended for debugging experiment harnesses,
//! not for measurement (see `pp-metrics` for that).

use crate::time::SimTime;
use std::collections::VecDeque;

/// One trace entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Simulation time of the note.
    pub at: SimTime,
    /// Component that recorded it.
    pub component: &'static str,
    /// Free-form message.
    pub message: String,
}

/// A bounded trace log.
#[derive(Debug, Clone)]
pub struct Trace {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    enabled: bool,
    total: u64,
}

impl Trace {
    /// Creates an enabled trace holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Trace { entries: VecDeque::new(), capacity: capacity.max(1), enabled: true, total: 0 }
    }

    /// Creates a disabled trace (records nothing, costs nothing).
    pub fn disabled() -> Self {
        Trace { entries: VecDeque::new(), capacity: 1, enabled: false, total: 0 }
    }

    /// True if recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a note if enabled.
    pub fn record(&mut self, at: SimTime, component: &'static str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(TraceEntry { at, component, message: message.into() });
        self.total += 1;
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// Total notes recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Renders the retained entries, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("[{}] {}: {}\n", e.at, e.component, e.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_renders() {
        let mut t = Trace::new(10);
        t.record(SimTime(1_000), "switch", "split pkt 1");
        t.record(SimTime(2_000), "server", "processed pkt 1");
        assert_eq!(t.entries().count(), 2);
        let rendered = t.render();
        assert!(rendered.contains("switch: split pkt 1"));
        assert!(rendered.contains("server: processed pkt 1"));
    }

    #[test]
    fn bounded_retention() {
        let mut t = Trace::new(3);
        for i in 0..10 {
            t.record(SimTime(i), "c", format!("note {i}"));
        }
        assert_eq!(t.entries().count(), 3);
        assert_eq!(t.total_recorded(), 10);
        let first = t.entries().next().unwrap();
        assert_eq!(first.message, "note 7");
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        assert!(!t.is_enabled());
        t.record(SimTime(1), "c", "x");
        assert_eq!(t.entries().count(), 0);
        assert_eq!(t.total_recorded(), 0);
        assert_eq!(t.render(), "");
    }
}
