//! PCIe bus model for the NF server.
//!
//! Each packet crossing the NIC costs a DMA transfer of its wire bytes plus
//! fixed per-transaction overhead (descriptor fetch, completion write,
//! doorbells — cf. Neugebauer et al., "Understanding PCIe performance for
//! end host networking", SIGCOMM'18, which the paper cites as [36]).
//!
//! PayloadPark's PCIe savings (Fig. 9, §6.2.1) come from transferring
//! truncated packets: the bus model simply sees fewer bytes per packet.

use crate::time::{Bandwidth, SimDuration, SimTime};

/// Configuration of the bus.
#[derive(Debug, Clone, Copy)]
pub struct PcieConfig {
    /// Usable bus bandwidth (defaults approximate a PCIe 3.0 x8 NIC slot).
    pub bandwidth: Bandwidth,
    /// Fixed overhead bytes charged per packet (descriptors, TLP headers,
    /// completions). The default of 64 matches ~2 TLPs + descriptor traffic.
    pub per_packet_overhead_bytes: usize,
}

impl Default for PcieConfig {
    fn default() -> Self {
        // 50 Gbps of usable PCIe bandwidth: enough for a 40 GE NIC at MTU
        // but a real constraint at small packet sizes, as in [36].
        PcieConfig { bandwidth: Bandwidth::gbps(50.0), per_packet_overhead_bytes: 64 }
    }
}

/// Statistics kept by the bus.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PcieStats {
    /// DMA transactions (≈ packets, one each direction).
    pub transactions: u64,
    /// Payload bytes moved (excluding per-packet overhead).
    pub payload_bytes: u64,
    /// Total bytes including overhead.
    pub bus_bytes: u64,
    /// Nanoseconds the bus spent busy.
    pub busy_ns: u64,
}

/// A serial PCIe bus shared by RX and TX DMA.
#[derive(Debug, Clone)]
pub struct PcieBus {
    config: PcieConfig,
    free_at: SimTime,
    stats: PcieStats,
}

impl PcieBus {
    /// Creates a bus with the given configuration.
    pub fn new(config: PcieConfig) -> Self {
        PcieBus { config, free_at: SimTime::ZERO, stats: PcieStats::default() }
    }

    /// The configuration.
    pub fn config(&self) -> PcieConfig {
        self.config
    }

    /// Performs a DMA of one packet of `bytes` starting no earlier than
    /// `now`; returns the completion time.
    pub fn dma(&mut self, now: SimTime, bytes: usize) -> SimTime {
        let total = bytes + self.config.per_packet_overhead_bytes;
        let start = now.max(self.free_at);
        let dur = self.config.bandwidth.serialization_delay(total);
        let done = start + dur;
        self.free_at = done;
        self.stats.transactions += 1;
        self.stats.payload_bytes += bytes as u64;
        self.stats.bus_bytes += total as u64;
        self.stats.busy_ns += dur.nanos();
        done
    }

    /// The queueing delay a DMA offered at `now` would see.
    pub fn backlog(&self, now: SimTime) -> SimDuration {
        self.free_at.since(now)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PcieStats {
        self.stats
    }

    /// Average bus utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now.nanos() == 0 {
            return 0.0;
        }
        self.stats.busy_ns as f64 / now.nanos() as f64
    }

    /// Achieved bus bandwidth over `[0, now]` in Gbps — the quantity the
    /// paper reports as "PCIe bandwidth utilization" (Fig. 9).
    pub fn achieved_gbps(&self, now: SimTime) -> f64 {
        if now.nanos() == 0 {
            return 0.0;
        }
        (self.stats.bus_bytes as f64 * 8.0) / now.nanos() as f64
    }

    /// Resets counters (for warm-up discard).
    pub fn reset(&mut self, now: SimTime) {
        self.stats = PcieStats::default();
        self.free_at = self.free_at.max(now);
    }
}

impl Default for PcieBus {
    fn default() -> Self {
        Self::new(PcieConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> PcieBus {
        PcieBus::new(PcieConfig { bandwidth: Bandwidth::gbps(8.0), per_packet_overhead_bytes: 100 })
    }

    #[test]
    fn dma_charges_overhead() {
        let mut b = bus();
        // 900 + 100 bytes at 8 Gbps = 1 µs.
        let done = b.dma(SimTime(0), 900);
        assert_eq!(done, SimTime(1_000));
        let s = b.stats();
        assert_eq!(s.payload_bytes, 900);
        assert_eq!(s.bus_bytes, 1000);
        assert_eq!(s.transactions, 1);
    }

    #[test]
    fn serial_transactions_queue() {
        let mut b = bus();
        let d1 = b.dma(SimTime(0), 900);
        let d2 = b.dma(SimTime(0), 900);
        assert_eq!(d1, SimTime(1_000));
        assert_eq!(d2, SimTime(2_000));
        assert_eq!(b.backlog(SimTime(0)), SimDuration(2_000));
    }

    #[test]
    fn achieved_gbps_reflects_totals() {
        let mut b = bus();
        b.dma(SimTime(0), 900);
        b.dma(SimTime(0), 900);
        // 2000 bytes in 4 µs window = 4 Gbps.
        assert!((b.achieved_gbps(SimTime(4_000)) - 4.0).abs() < 1e-9);
        assert!((b.utilization(SimTime(4_000)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn smaller_packets_pay_proportionally_more_overhead() {
        // The per-packet overhead is why PCIe savings are largest for small
        // packets (paper Fig. 9: 58% at 256 B).
        let mut b = bus();
        b.dma(SimTime(0), 156); // e.g. 256 B packet truncated by 160+ bytes
        let small = b.stats().bus_bytes;
        let mut b2 = bus();
        b2.dma(SimTime(0), 256);
        let full = b2.stats().bus_bytes;
        let saving = 1.0 - small as f64 / full as f64;
        assert!(saving > 0.25, "saving {saving}");
    }

    #[test]
    fn reset_and_default() {
        let mut b = PcieBus::default();
        b.dma(SimTime(0), 100);
        b.reset(SimTime(10));
        assert_eq!(b.stats(), PcieStats::default());
        assert_eq!(b.achieved_gbps(SimTime::ZERO), 0.0);
        assert_eq!(b.utilization(SimTime::ZERO), 0.0);
        assert_eq!(b.config().per_packet_overhead_bytes, 64);
    }
}
