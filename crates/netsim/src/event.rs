//! The discrete-event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The sequence number makes
//! ordering *stable*: events scheduled earlier pop earlier when timestamps
//! tie, which keeps runs deterministic regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// `E` is the caller's event payload; the queue itself is policy-free.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: SimTime::ZERO, popped: 0 }
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller and panics in
    /// debug builds; in release it is clamped to `now` to keep the clock
    /// monotonic.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        self.heap.push(Entry { time: at, seq: self.next_seq, payload });
        self.next_seq += 1;
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            self.now = e.time;
            self.popped += 1;
            (e.time, e.payload)
        })
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events processed so far (a cheap progress/work metric).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime(42));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn interleaved_scheduling_stays_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), 1);
        let (t, _) = q.pop().unwrap();
        // Schedule relative to the popped time.
        q.schedule(t + SimDuration(5), 2);
        q.schedule(t + SimDuration(1), 3);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_past_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(100), ());
        q.pop();
        q.schedule(SimTime(50), ());
    }
}
