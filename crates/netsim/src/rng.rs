//! Seeded, splittable random-number streams.
//!
//! Every stochastic component owns its own [`DetRng`] derived from the run
//! seed and a label, so adding a new random draw in one component never
//! perturbs another component's stream — a property the regression tests
//! rely on.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    rng: SmallRng,
}

impl DetRng {
    /// Creates a stream from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        DetRng { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Derives an independent child stream for `label`.
    ///
    /// Uses an FNV-1a style mix so distinct labels give distinct streams.
    pub fn derive(seed: u64, label: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325 ^ seed;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// Uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.gen()
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.rng.gen_range(lo..hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.rng.gen::<f64>() < p
    }

    /// Picks an index according to `weights` (need not be normalised).
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.rng.gen::<f64>() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::from_seed(7);
        let mut b = DetRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_diverge() {
        let mut a = DetRng::derive(7, "pktgen");
        let mut b = DetRng::derive(7, "firewall");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn derive_is_stable() {
        let x: Vec<u64> = {
            let mut r = DetRng::derive(1, "x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let y: Vec<u64> = {
            let mut r = DetRng::derive(1, "x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(x, y);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut r = DetRng::from_seed(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = DetRng::from_seed(5);
        for _ in 0..1000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut r = DetRng::from_seed(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        // Index 2 should get ~70%.
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.03);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = DetRng::from_seed(2);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        DetRng::from_seed(0).gen_range(5, 5);
    }
}
