//! Property-based tests for the simulation substrate.

use proptest::prelude::*;

use pp_netsim::event::EventQueue;
use pp_netsim::link::Link;
use pp_netsim::queue::DropTailQueue;
use pp_netsim::time::{Bandwidth, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The event queue pops every scheduled event exactly once, in
    /// non-decreasing time order, with FIFO tie-breaking.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        times in proptest::collection::vec(0u64..1_000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime(t), i);
        }
        let mut popped = Vec::new();
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(id > lid, "FIFO tie-break violated");
                }
            }
            prop_assert_eq!(t, SimTime(times[id]));
            last = Some((t, id));
            popped.push(id);
        }
        popped.sort_unstable();
        prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
    }

    /// A link never exceeds its line rate: for any offered pattern, the
    /// last bit of N bytes cannot leave before N×8/bandwidth seconds of
    /// cumulative transmission.
    #[test]
    fn link_never_beats_line_rate(
        sizes in proptest::collection::vec(40usize..1500, 1..100),
        gaps in proptest::collection::vec(0u64..2_000, 1..100),
    ) {
        let bw = Bandwidth::gbps(10.0);
        let mut link = Link::new(bw, SimDuration::ZERO);
        let mut t = SimTime::ZERO;
        let mut total_bytes = 0u64;
        let mut last_arrival = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            t += SimDuration(gaps[i % gaps.len()]);
            last_arrival = link.transmit(t, size);
            total_bytes += size as u64;
        }
        let min_ns = total_bytes * 8 * 1_000_000_000 / bw.as_bps();
        prop_assert!(
            last_arrival.nanos() >= min_ns,
            "{} bytes done at {} < {min_ns}",
            total_bytes,
            last_arrival.nanos()
        );
        prop_assert_eq!(link.stats().bytes, total_bytes);
    }

    /// Deliveries on a link preserve offer order (FIFO serialization).
    #[test]
    fn link_preserves_order(
        sizes in proptest::collection::vec(40usize..1500, 2..60),
    ) {
        let mut link = Link::new(Bandwidth::gbps(40.0), SimDuration::from_nanos(300));
        let mut last = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            let arrival = link.transmit(SimTime(i as u64 * 10), size);
            prop_assert!(arrival >= last);
            last = arrival;
        }
    }

    /// Drop-tail queues conserve items: enqueued = dequeued + still-queued,
    /// and drops only happen at capacity.
    #[test]
    fn queue_conservation(
        ops in proptest::collection::vec(any::<bool>(), 1..300),
        cap in 1usize..32,
    ) {
        let mut q = DropTailQueue::new(cap);
        let mut model: std::collections::VecDeque<usize> = Default::default();
        for (i, &push) in ops.iter().enumerate() {
            if push {
                let ok = q.push(i).is_ok();
                prop_assert_eq!(ok, model.len() < cap);
                if ok {
                    model.push_back(i);
                }
            } else {
                prop_assert_eq!(q.pop(), model.pop_front());
            }
            prop_assert_eq!(q.len(), model.len());
        }
        let s = q.stats();
        prop_assert_eq!(s.enqueued, s.dequeued + q.len() as u64);
        prop_assert!(s.high_watermark <= cap);
    }
}
