//! The live cluster: store-backed switches, proxy-merge links,
//! blackouts and rebalancing.
//!
//! A [`Cluster`] instantiates one store-backed switch
//! ([`payloadpark::build_store_switch_with_bases`]) per plan owner. Each
//! switch's park table is a private [`FlowStore`] spanning the *full*
//! parent slot space, addressed at global coordinates — so a wire tag
//! issued by any switch is meaningful to every other switch, which is
//! what makes both proxy-merge and live migration possible.
//!
//! Three cluster-only behaviors sit on top of the per-switch dataplane:
//!
//! * **Proxy-merge.** NF servers are cabled to a switch
//!   ([`Cluster::attachment_of`]); after a rebalance the slice they
//!   serve may live elsewhere. A merge arrival at a non-owner switch is
//!   forwarded to the owner over a modeled inter-switch [`Link`]
//!   (serialization + propagation, utilization accounted), and dropped
//!   — flow left parked, oracle still balanced — when the owner is down
//!   or the link is blackened for that sequence window.
//! * **Blackout.** [`Cluster::set_down`] blackens a whole switch:
//!   packets addressed to it vanish at ingress, its parked flows stay
//!   occupied, and the cluster-wide oracle
//!   ([`payloadpark::oracle::check_cluster`]) must still balance while
//!   the surviving switches keep serving their slices.
//! * **Rebalance.** [`Cluster::join`] / [`Cluster::leave`] recompute the
//!   plan from the updated ring and migrate *only* the slices whose ring
//!   segment moved: parked flows are lifted out of the old owner's store
//!   ([`FlowStore::extract_range`]) and injected into the new owner's,
//!   tagger `ti`/`clk` sequences travel with their slice, and every
//!   rebuilt switch carries its counter and stats history forward so the
//!   global balance equation never tears.

use crate::plan::ClusterPlan;
use crate::ring::{splitmix64, HashRing};
use payloadpark::counters::CounterSnapshot;
use payloadpark::flowstore::{shared, CircularStore, FlowStore, SlabStore};
use payloadpark::oracle::{check_cluster, OracleReport};
use payloadpark::storeprog::{build_store_switch_with_bases, StoreControl};
use payloadpark::{BuildError, ParkConfig, SharedStore};
use pp_fastpath::adversity::adverse_return_wave;
use pp_fastpath::telemetry::dataplane_registry;
use pp_metrics::registry::MetricsRegistry;
use pp_netsim::adversity::{AdversityProfile, FaultTally, SeqWindow};
use pp_netsim::link::Link;
use pp_netsim::time::{Bandwidth, SimDuration, SimTime};
use pp_packet::MacAddr;
use pp_rmt::switch::{BatchPacket, SwitchModel, SwitchOutput, SwitchStats};
use pp_rmt::PortId;
use std::collections::BTreeMap;
use std::sync::MutexGuard;

/// Which park-table implementation backs each switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Dense register-file layout ([`CircularStore`]) — the faithful
    /// ASIC model, capacity bounded by the slot count.
    Circular,
    /// Sparse generational slab ([`SlabStore`]) — memory tracks live
    /// occupancy, scaling the same semantics to millions of flows.
    Slab,
    /// Slab with a spill tier: at most `hot_capacity` payloads stay in
    /// hot slab memory, older parked payloads demote to the spill map
    /// and promote back transparently on re-park or restore.
    SlabSpill {
        /// Hot-tier payload capacity per switch.
        hot_capacity: usize,
    },
}

/// Cluster construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Number of switches at build time (ids `0..switches`).
    pub switches: usize,
    /// Seed for the consistent-hash ring and proxy routing.
    pub seed: u64,
    /// Park-table implementation per switch.
    pub store: StoreKind,
    /// Inter-switch link bandwidth (Gbit/s).
    pub link_gbps: f64,
    /// Inter-switch link propagation delay.
    pub link_propagation: SimDuration,
}

impl ClusterConfig {
    /// Slab-backed cluster of `switches` switches on 100 Gbit/s,
    /// 1 µs inter-switch links.
    pub fn slab(switches: usize) -> ClusterConfig {
        ClusterConfig {
            switches,
            seed: 42,
            store: StoreKind::Slab,
            link_gbps: 100.0,
            link_propagation: SimDuration::from_micros(1),
        }
    }

    /// Same topology, circular-buffer stores — the configuration the
    /// equivalence tests compare against the register program.
    pub fn circular(switches: usize) -> ClusterConfig {
        ClusterConfig { store: StoreKind::Circular, ..ClusterConfig::slab(switches) }
    }
}

/// Cluster-level event counters (per-switch dataplane counters live in
/// each switch; these count what only the cluster can see).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Merge arrivals forwarded to their owner over an inter-switch link.
    pub proxy_merges: u64,
    /// Proxied arrivals lost: owner down or link blackened.
    pub proxy_drops: u64,
    /// Packets addressed to a blacked-out switch, dropped at ingress.
    pub blackout_drops: u64,
    /// Rebalance operations (joins + leaves).
    pub rebalances: u64,
    /// Live parked flows migrated between stores by rebalances.
    pub rebalance_moved_flows: u64,
    /// Bytes carried by inter-switch links.
    pub link_bytes: u64,
}

struct Node {
    switch: SwitchModel,
    control: StoreControl,
    store: SharedStore,
    /// Counter/stats history from before the last pipeline rebuild —
    /// rebuilds reset the live pipeline, the bases keep totals monotonic.
    counter_base: CounterSnapshot,
    stats_base: SwitchStats,
    down: bool,
}

fn lock(store: &SharedStore) -> MutexGuard<'_, dyn FlowStore + 'static> {
    store.lock().expect("flow store lock poisoned")
}

/// An undirected inter-switch link key.
fn link_key(a: u32, b: u32) -> (u32, u32) {
    (a.min(b), a.max(b))
}

/// A multi-switch PayloadPark deployment.
pub struct Cluster {
    parent: ParkConfig,
    plan: ClusterPlan,
    cfg: ClusterConfig,
    nodes: BTreeMap<u32, Node>,
    links: BTreeMap<(u32, u32), Link>,
    link_blackouts: BTreeMap<(u32, u32), Vec<SeqWindow>>,
    /// Merge port → switch its NF server is cabled to. Set to the owner
    /// at build time; rebalances do *not* move cables, which is what
    /// makes proxy-merge happen.
    attachment: BTreeMap<u16, u32>,
    l2: Vec<(MacAddr, PortId)>,
    counters: ClusterCounters,
    /// Counters/stats of switches that left the cluster — they stay in
    /// the global balance forever.
    retired_counters: CounterSnapshot,
    retired_stats: SwitchStats,
    now: SimTime,
    next_id: u32,
    /// Per-thousand of merge arrivals diverted to a pseudo-random live
    /// switch instead of their cable attachment (models stale routing).
    proxy_spray_permille: u16,
}

impl Cluster {
    /// Builds a cluster running `parent` across `cfg.switches` switches.
    pub fn new(parent: &ParkConfig, cfg: ClusterConfig) -> Result<Cluster, BuildError> {
        let plan = ClusterPlan::new(parent, cfg.switches, cfg.seed).map_err(BuildError::Config)?;
        let mut cluster = Cluster {
            parent: parent.clone(),
            plan: plan.clone(),
            cfg,
            nodes: BTreeMap::new(),
            links: BTreeMap::new(),
            link_blackouts: BTreeMap::new(),
            attachment: BTreeMap::new(),
            l2: Vec::new(),
            counters: ClusterCounters::default(),
            retired_counters: CounterSnapshot::default(),
            retired_stats: SwitchStats::default(),
            now: SimTime(0),
            next_id: cfg.switches as u32,
            proxy_spray_permille: 0,
        };
        for &id in plan.switches() {
            let node = cluster.build_node(&plan, id, cluster.make_store(), Default::default())?;
            cluster.nodes.insert(id, node);
        }
        for (port, owner) in plan.port_owners() {
            cluster.attachment.insert(port, owner);
        }
        cluster.rebuild_links();
        Ok(cluster)
    }

    fn make_store(&self) -> SharedStore {
        let slots = self.parent.pipes[0].total_slots();
        let blocks = self.parent.primary_blocks;
        match self.cfg.store {
            StoreKind::Circular => shared(CircularStore::new(slots, blocks)),
            StoreKind::Slab => shared(SlabStore::new(slots, blocks)),
            StoreKind::SlabSpill { hot_capacity } => {
                shared(SlabStore::with_spill(slots, blocks, hot_capacity))
            }
        }
    }

    fn build_node(
        &self,
        plan: &ClusterPlan,
        id: u32,
        store: SharedStore,
        history: (CounterSnapshot, SwitchStats),
    ) -> Result<Node, BuildError> {
        let cfg = plan
            .config(id)
            .ok_or_else(|| BuildError::Config(format!("switch {id} owns no slices")))?;
        let bases = plan.bases(id).expect("config implies bases");
        let (mut switch, control) = build_store_switch_with_bases(cfg, bases, store.clone())?;
        for &(mac, port) in &self.l2 {
            switch.l2_add(mac, port);
        }
        Ok(Node {
            switch,
            control,
            store,
            counter_base: history.0,
            stats_base: history.1,
            down: false,
        })
    }

    fn rebuild_links(&mut self) {
        let ids: Vec<u32> = self.nodes.keys().copied().collect();
        let mut links = BTreeMap::new();
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                let key = link_key(a, b);
                let link = self.links.remove(&key).unwrap_or_else(|| {
                    Link::new(Bandwidth::gbps(self.cfg.link_gbps), self.cfg.link_propagation)
                });
                links.insert(key, link);
            }
        }
        self.links = links;
        self.link_blackouts.retain(|key, _| self.links.contains_key(key));
    }

    /// The current placement.
    pub fn plan(&self) -> &ClusterPlan {
        &self.plan
    }

    /// Cluster-level event counters.
    pub fn counters(&self) -> &ClusterCounters {
        &self.counters
    }

    /// Live switch ids (owners with a running pipeline), ascending.
    pub fn switch_ids(&self) -> Vec<u32> {
        self.nodes.keys().copied().collect()
    }

    /// Installs an L2 route on every switch, present and future.
    pub fn l2_add(&mut self, mac: MacAddr, port: PortId) {
        self.l2.push((mac, port));
        for node in self.nodes.values_mut() {
            node.switch.l2_add(mac, port);
        }
    }

    /// Blackens or restores a whole switch. Unknown ids are ignored.
    pub fn set_down(&mut self, id: u32, down: bool) {
        if let Some(node) = self.nodes.get_mut(&id) {
            node.down = down;
        }
    }

    /// Whether switch `id` is currently blacked out.
    pub fn is_down(&self, id: u32) -> bool {
        self.nodes.get(&id).is_some_and(|n| n.down)
    }

    /// Blackens the `a`↔`b` link for a window of packet sequence numbers:
    /// proxied merges inside the window are lost in transit.
    pub fn blacken_link(&mut self, a: u32, b: u32, window: SeqWindow) {
        self.link_blackouts.entry(link_key(a, b)).or_default().push(window);
    }

    /// The switch a merge port's NF server is cabled to.
    pub fn attachment_of(&self, port: u16) -> Option<u32> {
        self.attachment.get(&port).copied()
    }

    /// Re-cables a port's NF server to another switch.
    pub fn reattach(&mut self, port: u16, switch: u32) {
        self.attachment.insert(port, switch);
    }

    /// Diverts `permille`/1000 of merge arrivals to a pseudo-random live
    /// switch instead of their cable attachment — a deterministic model
    /// of stale routing that exercises proxy-merge without a rebalance.
    pub fn set_proxy_spray(&mut self, permille: u16) {
        self.proxy_spray_permille = permille.min(1000);
    }

    /// Processes a wave of ingress packets (the split phase): each packet
    /// enters at the switch owning its port. Packets addressed to a
    /// blacked-out switch are dropped at ingress; packets on ports no
    /// switch owns are dropped silently (no route exists anywhere).
    pub fn process_wave(&mut self, inputs: &[BatchPacket]) -> Vec<BatchPacket> {
        let mut outs = Vec::new();
        for pkt in inputs {
            let Some(owner) = self.plan.switch_of_port(pkt.port.0) else {
                continue;
            };
            let Some(node) = self.nodes.get_mut(&owner) else {
                continue;
            };
            if node.down {
                self.counters.blackout_drops += 1;
                continue;
            }
            outs.extend(
                node.switch
                    .process(&pkt.bytes, pkt.port, pkt.seq)
                    .into_iter()
                    .map(BatchPacket::from),
            );
        }
        outs
    }

    /// Processes a wave of NF-return packets (the merge phase). Each
    /// packet physically arrives at the switch its port's server is
    /// cabled to; if that switch no longer owns the slice, the packet is
    /// proxy-forwarded to the owner over the inter-switch link.
    pub fn process_return_wave(&mut self, wave: Vec<BatchPacket>) -> Vec<SwitchOutput> {
        let mut merged = Vec::new();
        for pkt in wave {
            let Some(owner) = self.plan.switch_of_port(pkt.port.0) else {
                continue;
            };
            let via = self.arrival_switch(pkt.port.0, pkt.seq, owner);
            if self.nodes.get(&via).is_none_or(|n| n.down) {
                // The packet hit a dead (or departed) switch's front panel.
                self.counters.blackout_drops += 1;
                continue;
            }
            if via != owner && !self.proxy_forward(via, owner, &pkt) {
                continue;
            }
            let node = self.nodes.get_mut(&owner).expect("owner checked in proxy_forward");
            merged.extend(node.switch.process(&pkt.bytes, pkt.port, pkt.seq));
        }
        merged
    }

    /// Where a return packet lands: its cable attachment, unless the
    /// spray knob diverts it to a seeded pseudo-random live switch.
    fn arrival_switch(&self, port: u16, seq: u64, owner: u32) -> u32 {
        let via = self.attachment.get(&port).copied().unwrap_or(owner);
        if self.proxy_spray_permille == 0 {
            return via;
        }
        let roll = splitmix64(self.cfg.seed ^ splitmix64(seq).rotate_left(17));
        if roll % 1000 < u64::from(self.proxy_spray_permille) {
            let ids: Vec<u32> = self.nodes.keys().copied().collect();
            ids[(splitmix64(roll) % ids.len() as u64) as usize]
        } else {
            via
        }
    }

    /// Carries one merge arrival from `via` to `owner`. Returns false
    /// when the packet is lost (owner down, or link blackened for this
    /// sequence); the flow stays parked and the books stay balanced.
    fn proxy_forward(&mut self, via: u32, owner: u32, pkt: &BatchPacket) -> bool {
        if self.nodes.get(&owner).is_none_or(|n| n.down) {
            self.counters.proxy_drops += 1;
            return false;
        }
        let key = link_key(via, owner);
        if self.link_blackouts.get(&key).is_some_and(|ws| ws.iter().any(|w| w.contains(pkt.seq))) {
            self.counters.proxy_drops += 1;
            return false;
        }
        let link = self.links.get_mut(&key).expect("live nodes are fully meshed");
        self.now = link.transmit(self.now, pkt.bytes.len());
        self.counters.proxy_merges += 1;
        self.counters.link_bytes += pkt.bytes.len() as u64;
        true
    }

    /// The full Split → adverse NF legs → Merge round trip, the cluster
    /// analogue of `SlicedTestbed::scalar_roundtrip_two_phase_adverse`:
    /// all splits (routed per the plan), then the whole split wave
    /// suffers the profile's two legs around the MAC-swap NF, then the
    /// survivors merge wherever their cables land them. On a one-switch
    /// cluster this is step-for-step the scalar reference loop.
    pub fn roundtrip_adverse(
        &mut self,
        inputs: &[BatchPacket],
        sink: MacAddr,
        adversity: &AdversityProfile,
        tally: &mut FaultTally,
    ) -> Vec<SwitchOutput> {
        let to_servers = self.process_wave(inputs);
        let back = adverse_return_wave(adversity, to_servers, sink, tally);
        self.process_return_wave(back)
    }

    /// Adds a fresh switch to the ring and migrates the slices its
    /// arrival claims. Returns the new switch's id.
    pub fn join(&mut self) -> Result<u32, BuildError> {
        let id = self.next_id;
        let mut ring = self.plan.ring().clone();
        ring.insert(id);
        self.rebalance(ring)?;
        self.next_id += 1;
        Ok(id)
    }

    /// Removes a switch from the ring, migrating its slices (and their
    /// parked flows) to the survivors. Its counters are retired into the
    /// cluster-wide balance; its servers are re-cabled to the new owners.
    pub fn leave(&mut self, id: u32) -> Result<(), BuildError> {
        let mut ring = self.plan.ring().clone();
        if !ring.contains(id) {
            return Err(BuildError::Config(format!("switch {id} is not a cluster member")));
        }
        if ring.len() == 1 {
            return Err(BuildError::Config("cannot remove the last switch".into()));
        }
        ring.remove(id);
        self.rebalance(ring)
    }

    /// Recomputes the plan from `ring` and migrates exactly the slices
    /// whose owner changed: parked flows move store-to-store, tagger
    /// sequences travel with their slice, rebuilt switches keep their
    /// counter history, departed switches retire into the global books.
    fn rebalance(&mut self, ring: HashRing) -> Result<(), BuildError> {
        let new_plan = ClusterPlan::with_ring(&self.parent, ring).map_err(BuildError::Config)?;

        // 1. Tagger state per parent slice, from every live switch — a
        // rebuild wipes registers, so even unmoved slices need this.
        let mut tagger: BTreeMap<usize, (u32, u32)> = BTreeMap::new();
        for (&id, node) in &self.nodes {
            let state = node.control.tagger_state(&node.switch);
            for (pos, &i) in self.plan.slice_indices(id).unwrap_or(&[]).iter().enumerate() {
                tagger.insert(i, state[pos]);
            }
        }

        // 2. Lift live flows out of every slice that changed owner.
        let mut moved: Vec<(u32, Vec<payloadpark::flowstore::ParkedFlow>)> = Vec::new();
        let mut moved_flows = 0u64;
        for i in self.plan.moved_slices(&new_plan) {
            let Some(node) = self.nodes.get(&self.plan.slice_owner(i)) else {
                continue;
            };
            let base = self.plan.slice_base(i) as usize;
            let flows = lock(&node.store).extract_range(base..base + self.plan.slice_slots(i));
            moved_flows += flows.iter().filter(|f| f.exp > 0).count() as u64;
            if !flows.is_empty() {
                moved.push((new_plan.slice_owner(i), flows));
            }
        }

        // 3. Rebuild every owner of the new plan, reusing its store and
        // accumulating its counter/stats history across the rebuild.
        let mut old_nodes = std::mem::take(&mut self.nodes);
        for &id in new_plan.switches() {
            let (store, history, down) = match old_nodes.remove(&id) {
                Some(node) => {
                    let mut counters = node.counter_base;
                    counters.add(&node.control.counters(&node.switch));
                    let mut stats = node.stats_base;
                    stats.add(&node.switch.stats());
                    (node.store, (counters, stats), node.down)
                }
                None => (self.make_store(), Default::default(), false),
            };
            let mut node = self.build_node(&new_plan, id, store, history)?;
            node.down = down;
            self.nodes.insert(id, node);
        }

        // 4. Retire switches that no longer own anything: their history
        // stays in the global balance forever.
        for node in old_nodes.into_values() {
            self.retired_counters.add(&node.counter_base);
            self.retired_counters.add(&node.control.counters(&node.switch));
            self.retired_stats.add(&node.stats_base);
            self.retired_stats.add(&node.switch.stats());
        }

        // 5. Land the migrated flows in their new owners' stores.
        for (owner, flows) in moved {
            let node = self.nodes.get(&owner).expect("new owner was just built");
            lock(&node.store).inject(flows);
        }

        // 6. Restore tagger sequences wherever each slice ended up.
        for (&id, node) in &mut self.nodes {
            for (pos, &i) in new_plan.slice_indices(id).unwrap_or(&[]).iter().enumerate() {
                if let Some(&(ti, clk)) = tagger.get(&i) {
                    node.control.set_tagger_state(&mut node.switch, pos, ti, clk);
                }
            }
        }

        // 7. Re-cable servers whose switch departed; refresh the mesh.
        for (&port, via) in self.attachment.iter_mut() {
            if !self.nodes.contains_key(via) {
                if let Some(owner) = new_plan.switch_of_port(port) {
                    *via = owner;
                }
            }
        }
        self.rebuild_links();
        self.counters.rebalances += 1;
        self.counters.rebalance_moved_flows += moved_flows;
        self.plan = new_plan;
        Ok(())
    }

    /// Switch `id`'s dataplane counters, rebuilds included.
    pub fn switch_counters(&self, id: u32) -> Option<CounterSnapshot> {
        self.nodes.get(&id).map(|node| {
            let mut c = node.counter_base;
            c.add(&node.control.counters(&node.switch));
            c
        })
    }

    /// Switch `id`'s occupied park-table slots.
    pub fn switch_occupancy(&self, id: u32) -> Option<usize> {
        self.nodes.get(&id).map(|node| node.control.occupancy())
    }

    /// Dataplane counters summed across every switch that ever served,
    /// departed ones included.
    pub fn cluster_counters(&self) -> CounterSnapshot {
        let mut total = self.retired_counters;
        for id in self.nodes.keys() {
            total.add(&self.switch_counters(*id).expect("live node"));
        }
        total
    }

    /// Occupied slots across the cluster.
    pub fn occupancy(&self) -> usize {
        self.nodes.values().map(|n| n.control.occupancy()).sum()
    }

    /// Payloads demoted to spill tiers across the cluster.
    pub fn spilled(&self) -> usize {
        self.nodes.values().map(|n| n.control.spilled()).sum()
    }

    /// Switch statistics summed across the cluster, departed included.
    pub fn cluster_stats(&self) -> SwitchStats {
        let mut total = self.retired_stats;
        for node in self.nodes.values() {
            total.add(&node.stats_base);
            total.add(&node.switch.stats());
        }
        total
    }

    /// The cluster-wide conformance check: the global balance equation
    /// over every switch (departed ones carry their counters at zero
    /// occupancy). See [`payloadpark::oracle::check_cluster`].
    pub fn check_oracle(&self) -> OracleReport {
        let mut rows: Vec<(CounterSnapshot, usize)> = self
            .nodes
            .keys()
            .map(|&id| {
                (self.switch_counters(id).expect("live node"), self.switch_occupancy(id).unwrap())
            })
            .collect();
        rows.push((self.retired_counters, 0));
        check_cluster(rows.iter().map(|(c, occ)| (c, *occ)))
    }

    /// The cluster's metrics registry: every dataplane family once per
    /// switch under a `switch` label, once unlabelled as the cluster
    /// aggregate (departed history included), plus the cluster-only
    /// families (`pp_cluster_*`). `tally` is the adversity fault tally
    /// of the run, attributed to the aggregate (faults happen on the NF
    /// legs, not inside one switch).
    pub fn telemetry_registry(&self, tally: &FaultTally) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let quiet = FaultTally::default();
        for (&id, node) in &self.nodes {
            let label = id.to_string();
            let mut stats = node.stats_base;
            stats.add(&node.switch.stats());
            reg.merge_from(&dataplane_registry(
                &self.switch_counters(id).expect("live node"),
                &stats,
                node.control.occupancy(),
                &quiet,
                &[("switch", label.as_str())],
            ));
        }
        reg.merge_from(&dataplane_registry(
            &self.cluster_counters(),
            &self.cluster_stats(),
            self.occupancy(),
            tally,
            &[],
        ));

        let live = self.nodes.values().filter(|n| !n.down).count();
        let g = reg.gauge("pp_cluster_switches", "Switches serving at least one slice.", &[]);
        reg.set(g, self.nodes.len() as f64);
        let g = reg.gauge("pp_cluster_switches_up", "Serving switches not blacked out.", &[]);
        reg.set(g, live as f64);
        for (name, help, value) in [
            (
                "pp_cluster_proxy_merges",
                "Merge arrivals forwarded to their owner over an inter-switch link.",
                self.counters.proxy_merges,
            ),
            (
                "pp_cluster_proxy_drops",
                "Proxied merge arrivals lost to a down owner or blackened link.",
                self.counters.proxy_drops,
            ),
            (
                "pp_cluster_blackout_drops",
                "Packets dropped at the ingress of a blacked-out switch.",
                self.counters.blackout_drops,
            ),
            ("pp_cluster_rebalances", "Rebalance operations performed.", self.counters.rebalances),
            (
                "pp_cluster_rebalance_moved_flows",
                "Live parked flows migrated between switches by rebalances.",
                self.counters.rebalance_moved_flows,
            ),
            (
                "pp_cluster_link_bytes",
                "Bytes carried by inter-switch proxy links.",
                self.counters.link_bytes,
            ),
        ] {
            let id = reg.counter(name, help, &[]);
            reg.set_counter(id, value);
        }
        reg
    }

    /// Aggregate utilization of the inter-switch mesh at the cluster's
    /// link clock, for the experiment report.
    pub fn mesh_utilization(&self) -> f64 {
        if self.links.is_empty() {
            return 0.0;
        }
        self.links.values().map(|l| l.utilization(self.now)).sum::<f64>() / self.links.len() as f64
    }
}
