//! Deterministic placement of a parent deployment onto a switch cluster.
//!
//! [`ClusterPlan`] subsumes [`payloadpark::ShardPlan`]: where the shard
//! plan deals a deployment's slices round-robin to a *fixed* number of
//! workers, the cluster plan assigns each slice to a switch by
//! consistent hashing ([`HashRing`]), so the assignment survives
//! membership changes with minimal movement — a switch join or leave
//! relocates only the slices whose ring segment moved, and each
//! relocation is a live-flow migration the cluster must pay for.
//!
//! The critical difference from sharding is the *coordinate space*: a
//! shard's config relabels its slices into a private cumulative layout,
//! but a cluster switch keeps every slice at its **parent** (global)
//! slot base ([`ClusterPlan::bases`]). A parked flow's 7-byte wire tag
//! carries the global `tbl_idx`, so the tag a switch issued before a
//! rebalance still addresses the same logical slot after the slice —
//! and its parked payloads — migrate to another switch.

use crate::ring::HashRing;
use payloadpark::config::{ParkConfig, PipePark};
use std::collections::BTreeMap;

/// Ring points per switch; enough to keep the slice split within a few
/// percent of even for the cluster sizes the harness sweeps.
pub const DEFAULT_VNODES: u32 = 16;

/// The largest parent slot space a cluster can address: the wire tag's
/// `tbl_idx` is 16 bits and must stay valid cluster-wide.
pub const MAX_CLUSTER_SLOTS: usize = 1 << 16;

/// One parent deployment placed onto a set of switches.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    parent: ParkConfig,
    ring: HashRing,
    slice_owner: Vec<u32>,
    slice_base: Vec<u32>,
    slice_slots: Vec<usize>,
    switches: Vec<u32>,
    configs: BTreeMap<u32, ParkConfig>,
    bases: BTreeMap<u32, Vec<u32>>,
    indices: BTreeMap<u32, Vec<usize>>,
    port_owner: BTreeMap<u16, u32>,
}

impl ClusterPlan {
    /// Places `parent` onto switches `0..switches` with the default
    /// vnode count.
    pub fn new(parent: &ParkConfig, switches: usize, seed: u64) -> Result<ClusterPlan, String> {
        if switches == 0 {
            return Err("a cluster needs at least one switch".into());
        }
        let ring = HashRing::with_members(seed, DEFAULT_VNODES, 0..switches as u32);
        ClusterPlan::with_ring(parent, ring)
    }

    /// Places `parent` onto an explicit ring — the rebalance path: build
    /// a new plan from the updated ring and diff slice owners against
    /// the old plan to find what must migrate.
    pub fn with_ring(parent: &ParkConfig, ring: HashRing) -> Result<ClusterPlan, String> {
        parent.validate()?;
        if ring.is_empty() {
            return Err("a cluster needs at least one switch".into());
        }
        let [pipe_cfg]: &[PipePark] = parent.pipes.as_slice() else {
            return Err(format!(
                "clustering expects a single-pipe deployment, got {} pipes",
                parent.pipes.len()
            ));
        };
        if pipe_cfg.annex_pipe.is_some() {
            return Err("recirculation deployments cannot be clustered".into());
        }
        let total = pipe_cfg.total_slots();
        if total > MAX_CLUSTER_SLOTS {
            return Err(format!(
                "{total} parent slots exceed the {MAX_CLUSTER_SLOTS}-slot 16-bit tag space"
            ));
        }

        let n_slices = pipe_cfg.slices.len();
        let mut slice_owner = Vec::with_capacity(n_slices);
        let mut slice_base = Vec::with_capacity(n_slices);
        let mut slice_slots = Vec::with_capacity(n_slices);
        let mut port_owner = BTreeMap::new();
        let mut indices: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        let mut base = 0u32;
        for (i, slice) in pipe_cfg.slices.iter().enumerate() {
            let owner = ring.owner(i as u64).expect("non-empty ring owns every slice");
            slice_owner.push(owner);
            slice_base.push(base);
            slice_slots.push(slice.slots);
            base += slice.slots as u32;
            indices.entry(owner).or_default().push(i);
            for &p in slice.split_ports.iter().chain(&slice.merge_ports) {
                if let Some(prev) = port_owner.insert(p, owner) {
                    if prev != owner {
                        return Err(format!(
                            "port {p} appears in slices owned by switches {prev} and {owner}"
                        ));
                    }
                }
            }
        }

        // Per-switch sub-deployments: owned slices in parent declaration
        // order, with parent-coordinate bases alongside.
        let mut configs = BTreeMap::new();
        let mut bases = BTreeMap::new();
        for (&owner, owned) in &indices {
            let slices: Vec<_> = owned.iter().map(|&i| pipe_cfg.slices[i].clone()).collect();
            let cfg = ParkConfig {
                pipes: vec![PipePark { pipe: pipe_cfg.pipe, slices, annex_pipe: None }],
                ..parent.clone()
            };
            cfg.validate().map_err(|e| format!("switch {owner}: {e}"))?;
            configs.insert(owner, cfg);
            bases.insert(owner, owned.iter().map(|&i| slice_base[i]).collect());
        }
        let switches = configs.keys().copied().collect();
        Ok(ClusterPlan {
            parent: parent.clone(),
            ring,
            slice_owner,
            slice_base,
            slice_slots,
            switches,
            configs,
            bases,
            indices,
            port_owner,
        })
    }

    /// The parent deployment this plan partitions.
    pub fn parent(&self) -> &ParkConfig {
        &self.parent
    }

    /// The membership ring behind the placement.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Switch ids that own at least one slice, ascending. A ring member
    /// the hash assigned nothing to is *idle*: alive, but hosting no
    /// parking state and no config.
    pub fn switches(&self) -> &[u32] {
        &self.switches
    }

    /// Number of parent slices.
    pub fn slice_count(&self) -> usize {
        self.slice_owner.len()
    }

    /// The switch owning parent slice `i`.
    pub fn slice_owner(&self, i: usize) -> u32 {
        self.slice_owner[i]
    }

    /// Parent slice `i`'s first slot in the global coordinate space.
    pub fn slice_base(&self, i: usize) -> u32 {
        self.slice_base[i]
    }

    /// Parent slice `i`'s slot count.
    pub fn slice_slots(&self, i: usize) -> usize {
        self.slice_slots[i]
    }

    /// The sub-deployment switch `id` runs, if it owns any slices.
    pub fn config(&self, id: u32) -> Option<&ParkConfig> {
        self.configs.get(&id)
    }

    /// Switch `id`'s slice bases in its config's slice order — global
    /// (parent) coordinates, the `bases` argument of
    /// [`payloadpark::build_store_switch_with_bases`].
    pub fn bases(&self, id: u32) -> Option<&[u32]> {
        self.bases.get(&id).map(Vec::as_slice)
    }

    /// The parent slice indices switch `id` owns, in its config's slice
    /// order.
    pub fn slice_indices(&self, id: u32) -> Option<&[usize]> {
        self.indices.get(&id).map(Vec::as_slice)
    }

    /// The switch owning `port` (split or merge), if any.
    pub fn switch_of_port(&self, port: u16) -> Option<u32> {
        self.port_owner.get(&port).copied()
    }

    /// Every port the parent deployment claims, with its owner.
    pub fn port_owners(&self) -> impl Iterator<Item = (u16, u32)> + '_ {
        self.port_owner.iter().map(|(&p, &o)| (p, o))
    }

    /// Total parent slots — clustering neither loses nor duplicates
    /// parking capacity.
    pub fn total_slots(&self) -> usize {
        self.slice_slots.iter().sum()
    }

    /// Parent slice indices whose owner differs between `self` (the old
    /// plan) and `next` — the slices a rebalance must migrate.
    pub fn moved_slices(&self, next: &ClusterPlan) -> Vec<usize> {
        (0..self.slice_count())
            .filter(|&i| i < next.slice_count() && self.slice_owner[i] != next.slice_owner[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payloadpark::config::SliceSpec;
    use pp_rmt::ChipProfile;

    /// `n` slices on pipe 0: slice k splits on port 2k, merges on 2k+1.
    fn sliced(n: usize, slots: usize) -> ParkConfig {
        let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0], 1, slots);
        cfg.pipes[0].slices = (0..n)
            .map(|k| SliceSpec {
                name: format!("server{k}"),
                split_ports: vec![2 * k as u16],
                merge_ports: vec![2 * k as u16 + 1],
                slots,
            })
            .collect();
        cfg
    }

    #[test]
    fn covers_every_slice_with_global_bases() {
        let cfg = sliced(8, 64);
        let plan = ClusterPlan::new(&cfg, 3, 42).unwrap();
        assert_eq!(plan.slice_count(), 8);
        assert_eq!(plan.total_slots(), 8 * 64);

        // Every slice has exactly one owner, at its parent base.
        let mut seen = 0;
        for (id_pos, &id) in plan.switches().iter().enumerate() {
            let idxs = plan.slice_indices(id).unwrap();
            let bases = plan.bases(id).unwrap();
            let cfg_sw = plan.config(id).unwrap();
            assert_eq!(idxs.len(), bases.len());
            assert_eq!(idxs.len(), cfg_sw.pipes[0].slices.len());
            for (pos, &i) in idxs.iter().enumerate() {
                assert_eq!(plan.slice_owner(i), id);
                assert_eq!(bases[pos], plan.slice_base(i));
                assert_eq!(cfg_sw.pipes[0].slices[pos].name, format!("server{i}"));
                seen += 1;
            }
            assert!(id_pos == 0 || plan.switches()[id_pos - 1] < id, "ascending ids");
        }
        assert_eq!(seen, 8, "no slice unowned or double-owned");
        assert_eq!(plan.slice_base(3), 3 * 64, "bases are the parent layout");

        // Ports follow their slice.
        for i in 0..8 {
            let owner = plan.slice_owner(i);
            assert_eq!(plan.switch_of_port(2 * i as u16), Some(owner));
            assert_eq!(plan.switch_of_port(2 * i as u16 + 1), Some(owner));
        }
        assert_eq!(plan.switch_of_port(999), None);
        assert_eq!(plan.port_owners().count(), 16);
    }

    #[test]
    fn one_switch_plan_is_the_parent_deployment() {
        let cfg = sliced(4, 32);
        let plan = ClusterPlan::new(&cfg, 1, 7).unwrap();
        assert_eq!(plan.switches(), &[0]);
        assert_eq!(plan.config(0), Some(&cfg));
        assert_eq!(plan.bases(0).unwrap(), &[0, 32, 64, 96]);
    }

    #[test]
    fn placement_is_deterministic_in_the_seed() {
        let cfg = sliced(8, 16);
        let a = ClusterPlan::new(&cfg, 4, 11).unwrap();
        let b = ClusterPlan::new(&cfg, 4, 11).unwrap();
        assert_eq!(a.slice_owner, b.slice_owner);
    }

    #[test]
    fn rejects_invalid_parents() {
        assert!(ClusterPlan::new(&sliced(2, 16), 0, 1).is_err(), "zero switches");

        let mut annex = sliced(1, 16);
        annex.pipes[0].annex_pipe = Some(1);
        assert!(ClusterPlan::new(&annex, 2, 1).is_err(), "annex");

        let mut two_pipes = sliced(2, 16);
        let mut second = two_pipes.pipes[0].clone();
        second.pipe = 1;
        for s in &mut second.slices {
            s.split_ports.iter_mut().for_each(|p| *p += 16);
            s.merge_ports.iter_mut().for_each(|p| *p += 16);
        }
        two_pipes.pipes.push(second);
        assert!(ClusterPlan::new(&two_pipes, 2, 1).is_err(), "two pipes");

        let huge = sliced(2, 40_000);
        assert!(ClusterPlan::new(&huge, 2, 1).is_err(), "tag space overflow");
    }

    #[test]
    fn moved_slices_diffs_owners() {
        let cfg = sliced(8, 16);
        let old = ClusterPlan::new(&cfg, 3, 5).unwrap();
        let mut ring = old.ring().clone();
        ring.insert(3);
        let new = ClusterPlan::with_ring(&cfg, ring).unwrap();
        for i in old.moved_slices(&new) {
            assert_ne!(old.slice_owner(i), new.slice_owner(i));
        }
        assert!(old.moved_slices(&old).is_empty());
    }
}
