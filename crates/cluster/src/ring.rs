//! A seeded consistent-hash ring with virtual nodes.
//!
//! The cluster plan needs a port→switch assignment that (a) is a pure
//! function of `(seed, member set)` — two control planes that agree on
//! the membership agree on every placement without talking to each
//! other — and (b) moves as little as possible when the membership
//! changes: a switch join or leave should relocate only the ~`1/N` of
//! the key space adjacent to the changed ring points, because every
//! relocated slice costs a live flow migration. Classic consistent
//! hashing with virtual nodes gives exactly that; [`HashRing`] is the
//! minimal deterministic form of it.
//!
//! Determinism is load-bearing: the point set is rebuilt from scratch
//! (sorted member set × vnode index, hashed with SplitMix64) on every
//! membership change, so insertion *order* can never leak into
//! placement — `{0,1,2}` reached via any insert/remove history owns the
//! same keys. The `ring_props` proptests pin this, the ≤`~1/N` movement
//! bound, and the every-key-has-exactly-one-live-owner invariant.

use std::collections::BTreeSet;

/// SplitMix64's output mixer — a cheap, statistically strong 64-bit
/// permutation (Steele et al., OOPSLA '14). Used for ring points and key
/// hashes; also reused by the cluster for deterministic proxy routing.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Domain tags keeping key hashes and ring-point hashes disjoint: a key
/// equal to a member's `(id << 32) | vnode` encoding must not hash onto
/// that member's point.
const KEY_DOMAIN: u64 = 0x6b65_795f_646f_6d31; // "key_dom1"
const POINT_DOMAIN: u64 = 0x706f_696e_745f_646d; // "point_dm"

/// A consistent-hash ring: each member owns `vnodes` pseudo-random
/// points on the 64-bit circle; a key belongs to the member whose point
/// is the first at or clockwise of the key's hash.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: u32,
    members: BTreeSet<u32>,
    /// `(point, member)`, sorted — rebuilt from `members` on change.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// An empty ring. `vnodes` is the number of points per member; more
    /// points smooth the load split at the cost of a longer rebuild.
    pub fn new(seed: u64, vnodes: u32) -> HashRing {
        assert!(vnodes > 0, "a ring member needs at least one point");
        HashRing { seed, vnodes, members: BTreeSet::new(), points: Vec::new() }
    }

    /// A ring populated with `members`.
    pub fn with_members(
        seed: u64,
        vnodes: u32,
        members: impl IntoIterator<Item = u32>,
    ) -> HashRing {
        let mut ring = HashRing::new(seed, vnodes);
        ring.members = members.into_iter().collect();
        ring.rebuild();
        ring
    }

    /// Adds a member. Returns false (and changes nothing) if already present.
    pub fn insert(&mut self, id: u32) -> bool {
        let added = self.members.insert(id);
        if added {
            self.rebuild();
        }
        added
    }

    /// Removes a member. Returns false if it was not present.
    pub fn remove(&mut self, id: u32) -> bool {
        let removed = self.members.remove(&id);
        if removed {
            self.rebuild();
        }
        removed
    }

    /// The member ids, ascending.
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        self.members.iter().copied()
    }

    /// Whether `id` is a member.
    pub fn contains(&self, id: u32) -> bool {
        self.members.contains(&id)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The seed every placement derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The member owning `key`, or `None` on an empty ring.
    pub fn owner(&self, key: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let h = splitmix64(self.seed ^ splitmix64(KEY_DOMAIN ^ key));
        let i = self.points.partition_point(|&(p, _)| p < h);
        Some(self.points[i % self.points.len()].1)
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for &id in &self.members {
            for v in 0..self.vnodes {
                let h = splitmix64(
                    self.seed ^ splitmix64(POINT_DOMAIN ^ ((u64::from(id) << 32) | u64::from(v))),
                );
                self.points.push((h, id));
            }
        }
        // Sorting by (point, member) makes even hash-point collisions
        // deterministic (the lower member id wins the segment).
        self.points.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_a_function_of_seed_and_members() {
        let a = HashRing::with_members(7, 16, [0, 1, 2]);
        let mut b = HashRing::new(7, 16);
        // A different construction history: 2, 3, 0, 1, then drop 3.
        for id in [2, 3, 0, 1] {
            assert!(b.insert(id));
        }
        assert!(b.remove(3));
        for key in 0..500u64 {
            assert_eq!(a.owner(key), b.owner(key), "key {key}");
        }
        assert_ne!(
            HashRing::with_members(8, 16, [0, 1, 2]).owner(1),
            None,
            "different seed still owns every key"
        );
    }

    #[test]
    fn empty_ring_owns_nothing_and_duplicates_are_rejected() {
        let mut ring = HashRing::new(1, 4);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
        assert!(ring.insert(9));
        assert!(!ring.insert(9), "duplicate insert");
        assert!(!ring.remove(10), "absent remove");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.owner(42), Some(9), "a 1-member ring owns everything");
        assert!(ring.contains(9));
        assert_eq!(ring.seed(), 1);
        assert_eq!(ring.members().collect::<Vec<_>>(), vec![9]);
    }
}
