//! **`pp_cluster`** — the distributed parking tier: one PayloadPark
//! deployment spread across a cluster of switches.
//!
//! The paper deploys PayloadPark on a single top-of-rack switch; its
//! §6.2.4 slicing already partitions the park table between NF servers,
//! and [`payloadpark::ShardPlan`] reuses that partition for parallel
//! workers *inside* one switch. This crate takes the same partition
//! across switch boundaries:
//!
//! * [`ring`] — a seeded consistent-hash ring with virtual nodes:
//!   placement is a pure function of `(seed, membership)`, and a
//!   join/leave moves only ~`1/N` of the key space;
//! * [`plan`] — [`ClusterPlan`] maps every parent slice (and its ports)
//!   to an owning switch, keeping **global** slot coordinates so the
//!   7-byte wire tag a switch issues stays valid wherever the slice
//!   later lives;
//! * [`cluster`] — the live [`Cluster`]: store-backed switches
//!   ([`payloadpark::storeprog`]) over [`payloadpark::flowstore`] park
//!   tables, proxy-merge forwarding over modeled inter-switch links,
//!   whole-switch blackouts, and join/leave rebalancing that migrates
//!   parked flows and tagger state between stores while the
//!   cluster-wide oracle ([`payloadpark::oracle::check_cluster`]) keeps
//!   the global balance equation intact.

pub mod cluster;
pub mod plan;
pub mod ring;

pub use cluster::{Cluster, ClusterConfig, ClusterCounters, StoreKind};
pub use plan::{ClusterPlan, DEFAULT_VNODES, MAX_CLUSTER_SLOTS};
pub use ring::HashRing;
