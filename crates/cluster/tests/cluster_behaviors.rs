//! Cluster-tier behaviors: live migration on join/leave, proxy-merge
//! over the inter-switch mesh, link blackening, and the stale-routing
//! spray — each asserted oracle-clean.

use pp_cluster::{Cluster, ClusterConfig};
use pp_fastpath::testbed::SlicedTestbed;
use pp_netsim::adversity::SeqWindow;
use pp_rmt::switch::BatchPacket;

const SLICES: usize = 8;
const SLOTS: usize = 48;
const PACKETS: usize = 200;

fn build(switches: usize) -> (SlicedTestbed, Cluster) {
    let tb = SlicedTestbed::new(SLICES, SLOTS);
    let mut cluster = Cluster::new(&tb.config(), ClusterConfig::slab(switches)).unwrap();
    tb.wire(&mut |mac, port| cluster.l2_add(mac, port));
    (tb, cluster)
}

/// MAC-swaps a split-side output wave back toward the sink.
fn return_wave(tb: &SlicedTestbed, outs: Vec<BatchPacket>) -> Vec<BatchPacket> {
    outs.into_iter()
        .map(|mut pkt| {
            pkt.bytes[0..6].copy_from_slice(&tb.sink_mac().0);
            pkt
        })
        .collect()
}

#[test]
fn join_migrates_in_flight_flows_and_proxy_merges_them() {
    let (tb, mut cluster) = build(2);
    let inputs = tb.counted_enterprise_wave(11, PACKETS);

    // Park a full wave, then grow the cluster while the flows are in
    // flight: the slices the joiner claims migrate, payloads included.
    let outs = cluster.process_wave(&inputs);
    let parked = cluster.cluster_counters().splits;
    assert!(parked > 0, "wave parked nothing");
    let occupied_before = cluster.occupancy();

    let joiner = cluster.join().unwrap();
    assert_eq!(joiner, 2);
    assert_eq!(cluster.counters().rebalances, 1);
    assert!(
        cluster.counters().rebalance_moved_flows > 0,
        "the joiner claimed slices holding live flows"
    );
    assert_eq!(cluster.occupancy(), occupied_before, "migration loses no parked flow");
    assert!(
        !cluster.plan().slice_indices(joiner).unwrap_or(&[]).is_empty(),
        "the joiner owns slices"
    );
    cluster.check_oracle().assert_ok();

    // The NF servers are still cabled to the old owners, so merges for
    // migrated slices proxy across the mesh — and all of them restore.
    let merged = cluster.process_return_wave(return_wave(&tb, outs));
    assert!(cluster.counters().proxy_merges > 0, "no merge crossed the mesh");
    assert!(cluster.counters().link_bytes > 0);
    let totals = cluster.cluster_counters();
    assert_eq!(totals.merges, parked, "every parked flow merged");
    assert_eq!(cluster.occupancy(), 0);
    assert_eq!(merged.len() as u64, totals.merges + totals.enb0_from_server);
    cluster.check_oracle().assert_ok();
}

#[test]
fn leave_retires_history_and_recables_servers() {
    let (tb, mut cluster) = build(3);
    let inputs = tb.counted_enterprise_wave(12, PACKETS);
    let outs = cluster.process_wave(&inputs);
    let parked = cluster.cluster_counters().splits;

    let gone = cluster.switch_ids()[0];
    cluster.leave(gone).unwrap();
    assert!(!cluster.switch_ids().contains(&gone));
    for (port, _) in cluster.plan().port_owners().collect::<Vec<_>>() {
        assert_ne!(cluster.attachment_of(port), Some(gone), "port {port} still cabled to {gone}");
    }
    cluster.check_oracle().assert_ok();

    // The survivors (re-cabled) merge the entire wave locally.
    let merged = cluster.process_return_wave(return_wave(&tb, outs));
    let totals = cluster.cluster_counters();
    assert_eq!(totals.merges, parked);
    assert!(!merged.is_empty());
    assert_eq!(cluster.occupancy(), 0);
    cluster.check_oracle().assert_ok();

    // Removing the last switch is refused; unknown ids are refused.
    let mut one = build(1).1;
    assert!(one.leave(0).is_err());
    assert!(one.leave(99).is_err());
}

#[test]
fn blackened_link_drops_proxied_merges_without_leaking() {
    let (tb, mut cluster) = build(2);
    let inputs = tb.counted_enterprise_wave(13, PACKETS);
    let outs = cluster.process_wave(&inputs);
    cluster.join().unwrap();

    // Black every mesh path for the whole run: all proxied merges die in
    // transit, their flows stay parked, the books still balance.
    let ids = cluster.switch_ids();
    let all = SeqWindow { from: 0, to: u64::MAX };
    for (i, &a) in ids.iter().enumerate() {
        for &b in &ids[i + 1..] {
            cluster.blacken_link(a, b, all);
        }
    }
    cluster.process_return_wave(return_wave(&tb, outs));
    assert_eq!(cluster.counters().proxy_merges, 0);
    assert!(cluster.counters().proxy_drops > 0, "nothing needed the mesh");
    let totals = cluster.cluster_counters();
    assert_eq!(
        cluster.occupancy() as u64,
        totals.splits - totals.merges - totals.explicit_drops - totals.evictions,
        "undelivered proxied flows remain parked"
    );
    cluster.check_oracle().assert_ok();
}

#[test]
fn proxy_spray_models_stale_routing() {
    let (tb, mut cluster) = build(4);
    cluster.set_proxy_spray(400);
    let inputs = tb.counted_enterprise_wave(14, PACKETS);
    let outs = cluster.process_wave(&inputs);
    let parked = cluster.cluster_counters().splits;

    cluster.process_return_wave(return_wave(&tb, outs));
    assert!(cluster.counters().proxy_merges > 0, "spray never missed the owner");
    assert_eq!(cluster.cluster_counters().merges, parked, "proxied merges still restore");
    assert!(cluster.mesh_utilization() > 0.0);
    cluster.check_oracle().assert_ok();
}
