//! Property-based tests for the consistent-hash ring — the properties
//! the cluster tier's correctness rests on: seeded determinism, bounded
//! key movement on membership change, and total single ownership.

use proptest::prelude::*;

use pp_cluster::HashRing;

const KEYS: u64 = 2_000;

fn owners(ring: &HashRing) -> Vec<u32> {
    (0..KEYS).map(|k| ring.owner(k).expect("non-empty ring owns every key")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Placement is a pure function of (seed, membership): any
    /// insert/remove history arriving at the same member set places
    /// every key identically.
    #[test]
    fn seeded_determinism_is_history_free(
        seed in any::<u64>(),
        members in proptest::collection::vec(0u32..64, 1..8),
        extras in proptest::collection::vec(64u32..96, 0..4),
    ) {
        let members: std::collections::BTreeSet<u32> = members.into_iter().collect();
        let direct = HashRing::with_members(seed, 16, members.iter().copied());

        // A detour: add spurious members, then remove them again.
        let mut detour = HashRing::new(seed, 16);
        for &e in &extras {
            detour.insert(e);
        }
        for &m in &members {
            detour.insert(m);
        }
        for &e in &extras {
            if !members.contains(&e) {
                detour.remove(e);
            }
        }
        prop_assert_eq!(owners(&direct), owners(&detour));
    }

    /// A single join moves at most a bounded fraction of keys — the
    /// consistent-hashing contract (expected 1/(N+1); asserted with
    /// slack for vnode variance) — and every key that moved, moved TO
    /// the joiner; nothing shuffles between the incumbents.
    #[test]
    fn single_join_moves_a_bounded_fraction_to_the_joiner(
        seed in any::<u64>(),
        n in 1usize..9,
    ) {
        let before = HashRing::with_members(seed, 16, 0..n as u32);
        let mut after = before.clone();
        after.insert(n as u32);

        let old = owners(&before);
        let new = owners(&after);
        let mut moved = 0u64;
        for (o, w) in old.iter().zip(&new) {
            if o != w {
                prop_assert_eq!(*w, n as u32, "keys only move to the joiner");
                moved += 1;
            }
        }
        // Expected movement is KEYS/(n+1); allow 3x for the variance of
        // 16 vnodes per member.
        let bound = 3 * KEYS / (n as u64 + 1);
        prop_assert!(moved <= bound, "{moved} keys moved, bound {bound} at n={n}");
    }

    /// A single leave relocates exactly the departed member's keys (its
    /// share, ~1/N), and only those.
    #[test]
    fn single_leave_moves_only_the_departed_share(
        seed in any::<u64>(),
        n in 2usize..9,
        gone in 0usize..9,
    ) {
        let gone = (gone % n) as u32;
        let before = HashRing::with_members(seed, 16, 0..n as u32);
        let mut after = before.clone();
        after.remove(gone);

        for (o, w) in owners(&before).iter().zip(&owners(&after)) {
            if o != w {
                prop_assert_eq!(*o, gone, "only the departed member's keys move");
            }
            prop_assert_ne!(*w, gone, "no key still maps to the departed member");
        }
    }

    /// Every key always maps to exactly one live member, whatever the
    /// membership churn was.
    #[test]
    fn every_key_has_exactly_one_live_owner(
        seed in any::<u64>(),
        ops in proptest::collection::vec((any::<bool>(), 0u32..32), 1..40),
    ) {
        let mut ring = HashRing::new(seed, 16);
        ring.insert(0); // never removed: the ring stays non-empty
        for &(add, id) in &ops {
            if add {
                ring.insert(id + 1);
            } else {
                ring.remove(id + 1);
            }
        }
        let members: Vec<u32> = ring.members().collect();
        for key in 0..KEYS {
            let owner = ring.owner(key).expect("non-empty ring");
            prop_assert!(members.contains(&owner), "key {} owned by dead {}", key, owner);
        }
    }
}
