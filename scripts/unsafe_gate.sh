#!/usr/bin/env bash
# Unsafe-code audit gate: every `unsafe` site in first-party code must carry
# a `// SAFETY:` comment — on the same line, in the contiguous comment block
# directly above it, or (for a pair of adjacent `unsafe impl`s) on the
# immediately preceding unsafe line sharing one justification. Complements
# the workspace-wide `unsafe_op_in_unsafe_fn = "deny"` lint (root
# Cargo.toml), which forces every unsafe operation into its own commented
# block.
#
# Usage: scripts/unsafe_gate.sh   (exits 1 listing any unannotated site)
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
# First-party code only: the vendored crates.io stand-ins are outside this
# policy's scope (they are audited as a unit when imported).
while IFS=: read -r file line text; do
    # Skip pure-comment or attribute mentions of the word "unsafe".
    stripped="${text%%//*}"
    case "$stripped" in
    *unsafe*) ;;
    *) continue ;;
    esac
    case "$text" in
    *unsafe_op_in_unsafe_fn* | *forbid\(unsafe* | *deny\(unsafe*) continue ;;
    esac
    if printf '%s\n' "$text" | grep -q '// SAFETY:'; then
        continue
    fi
    # Walk the contiguous run of comment lines (or an adjacent unsafe impl
    # covered by the same comment) directly above the site.
    ok=0
    n=$((line - 1))
    while [ "$n" -ge 1 ]; do
        prev=$(sed -n "${n}p" "$file")
        case "$prev" in
        *"// SAFETY:"*)
            ok=1
            break
            ;;
        [[:space:]]*"//"* | "//"*) ;;
        *unsafe\ impl*) ;;
        *) break ;;
        esac
        n=$((n - 1))
    done
    if [ "$ok" -eq 1 ]; then
        continue
    fi
    echo "unsafe_gate: $file:$line: unsafe without a // SAFETY: comment"
    echo "    $text"
    fail=1
done < <(grep -rn --include='*.rs' -w 'unsafe' crates src examples 2>/dev/null || true)

if [ "$fail" -ne 0 ]; then
    echo "unsafe_gate: FAIL — annotate each site with // SAFETY: <why this is sound>"
    exit 1
fi
echo "unsafe_gate: ok — every unsafe site carries a // SAFETY: comment"
