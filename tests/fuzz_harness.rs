//! End-to-end acceptance for the differential conformance fuzzer.
//!
//! Four pins:
//!
//! 1. **Clean batch** — the CI `--quick` batch (same seed, same iteration
//!    count) finds zero violations, and two runs render identically.
//! 2. **Bug detection** — the deliberately injected engine-counter skew
//!    is caught, shrunk to a minimal repro, shrunk *identically* a second
//!    time (byte-for-byte repro files), and the repro replays to the same
//!    failure while the bug is active.
//! 3. **Pre-screen** — a statically rejected config is skipped, never
//!    executed.
//! 4. **Corpus** — the checked-in `corpus/` of pinned regressions matches
//!    its in-tree definitions exactly and replays clean against today's
//!    code.
//!
//! To regenerate `corpus/` after an intentional format or generator
//! change: `cargo test --test fuzz_harness -- --ignored regenerate`.

use pp_harness::fuzz::cli::{DEFAULT_SEED, QUICK_ITERS};
use pp_harness::fuzz::config::{
    AdversityKnobs, ClusterEvent, ClusterFuzz, DesKnobs, FuzzConfig, NfChoice, PolicyKnobs,
    StoreChoice,
};
use pp_harness::fuzz::corpus::{corpus_files, parse_repro, render_repro, replay_file, Repro};
use pp_harness::fuzz::driver::{run_case, Bug, CaseOutcome};
use pp_harness::fuzz::{run_fuzz, FuzzCli};
use std::fs;
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// The pinned regressions, as code. Each entry reproduces the workload
/// class of a bug this PR's satellites fixed; the JSON files in
/// `corpus/` are exactly `render_repro` of these (guarded by
/// [`corpus_matches_pinned_definitions`]), and CI replays the directory
/// on every push via `pp-fuzz corpus`.
fn pinned_repros() -> Vec<(String, Repro)> {
    // Common quiet baseline to override per scenario.
    fn base(seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            slices: 4,
            slots: 48,
            expiry: 1,
            store: StoreChoice::Slab,
            tcp_permille: 0,
            waves: 2,
            packets: 120,
            wave_seed: 9,
            adversity: AdversityKnobs {
                seed: 77,
                to_nf_drop_permille: 0,
                drop_permille: 0,
                duplicate_permille: 0,
                truncate_permille: 0,
                corrupt_permille: 0,
                reorder_permille: 0,
                max_displacement: 0,
                blackout: None,
            },
            policy: PolicyKnobs { max_expiry: 4, premature_tolerance: 0, occupied_tolerance: 64 },
            cluster: None,
            nf: NfChoice::MacSwap,
            des: DesKnobs { duration_us: 600, sram_permille: 260, explicit_drop: false },
        }
    }

    // The SlabStore spill-demotion regression: a tiny hot tier under
    // duplication + loss + reordering + mixed TCP keeps merge residuals
    // and expired flows flowing through `enforce_spill`, which used to
    // double-touch the spill gauge on already-expired flows.
    let spill = Repro {
        seed: 101,
        config: FuzzConfig {
            store: StoreChoice::SlabSpill { hot_capacity: 4 },
            tcp_permille: 700,
            adversity: AdversityKnobs {
                drop_permille: 100,
                duplicate_permille: 150,
                reorder_permille: 300,
                max_displacement: 24,
                ..base(101).adversity
            },
            ..base(101)
        },
        failure: "pinned: slab+spill demotion double-touched the spill gauge on expired flows"
            .into(),
    };

    // The cluster spill-rebalance regression: spilled payloads migrate
    // store-to-store through a join and a leave with flows in flight,
    // and must restore byte-identically afterwards.
    let rebalance = Repro {
        seed: 102,
        config: FuzzConfig {
            slices: 8,
            expiry: 2,
            store: StoreChoice::SlabSpill { hot_capacity: 8 },
            waves: 3,
            packets: 100,
            adversity: AdversityKnobs {
                drop_permille: 50,
                duplicate_permille: 100,
                ..base(102).adversity
            },
            cluster: Some(ClusterFuzz {
                switches: 2,
                seed: 42,
                schedule: vec![ClusterEvent::Join, ClusterEvent::Leave],
            }),
            nf: NfChoice::FwNat,
            ..base(102)
        },
        failure: "pinned: spill-tier payloads must survive join/leave rebalance migration".into(),
    };

    // Adaptive-policy pressure: a cramped table under heavy return-leg
    // loss drives premature evictions and occupied-refusals, walking the
    // threshold both ways; the implementation must track the pure model.
    let policy = Repro {
        seed: 103,
        config: FuzzConfig {
            slots: 16,
            store: StoreChoice::Circular,
            tcp_permille: 500,
            waves: 3,
            packets: 150,
            adversity: AdversityKnobs { drop_permille: 200, ..base(103).adversity },
            policy: PolicyKnobs { max_expiry: 4, premature_tolerance: 0, occupied_tolerance: 8 },
            nf: NfChoice::FwNatLb,
            ..base(103)
        },
        failure: "pinned: adaptive evictor must agree with the pure policy model under pressure"
            .into(),
    };

    vec![
        ("spill-demotion.json".into(), spill),
        ("cluster-spill-rebalance.json".into(), rebalance),
        ("adaptive-policy-pressure.json".into(), policy),
    ]
}

/// The CI quick batch is clean and renders identically across runs.
#[test]
fn quick_batch_is_clean_and_deterministic() {
    let cli =
        FuzzCli::Run { seed: DEFAULT_SEED, iters: QUICK_ITERS, corpus: None, inject_bug: false };
    let first = run_fuzz(&cli).expect("batch runs");
    assert_eq!(first.failures, 0, "quick batch found violations:\n{}", first.rendered);
    assert!(first.passed > 0, "quick batch executed nothing:\n{}", first.rendered);
    let second = run_fuzz(&cli).expect("batch runs");
    assert_eq!(first.rendered, second.rendered, "fuzz batch is not deterministic");
}

/// The injected bug is caught, shrunk identically twice, and the repro
/// replays to the same failure while the bug is active.
#[test]
fn injected_bug_is_caught_shrunk_and_replayable() {
    let out = std::env::temp_dir().join(format!("pp-fuzz-inject-{}", std::process::id()));
    let dirs = [out.join("a"), out.join("b")];
    let mut repro_bytes = Vec::new();
    for dir in &dirs {
        let cli = FuzzCli::Run {
            seed: DEFAULT_SEED,
            iters: 1,
            corpus: Some(dir.to_string_lossy().into_owned()),
            inject_bug: true,
        };
        let run = run_fuzz(&cli).expect("batch runs");
        assert_eq!(run.failures, 1, "injected bug went undetected:\n{}", run.rendered);
        let files = corpus_files(dir).expect("repro dir");
        assert_eq!(files.len(), 1, "expected exactly one repro");
        repro_bytes.push(fs::read(&files[0]).expect("repro readable"));
    }
    assert_eq!(repro_bytes[0], repro_bytes[1], "shrinker is not deterministic");

    let repro = parse_repro(std::str::from_utf8(&repro_bytes[0]).unwrap()).expect("repro parses");
    // Replaying with the bug active reproduces the exact minimized failure.
    match run_case(&repro.config, Bug::EngineMergeSkew) {
        CaseOutcome::Fail { reason } => assert_eq!(reason, repro.failure, "failure drifted"),
        other => panic!("minimized repro no longer fails under the bug: {other:?}"),
    }
    // And without the injection, today's code is clean on the same case.
    match run_case(&repro.config, Bug::None) {
        CaseOutcome::Pass(_) => {}
        other => panic!("repro fails without the injected bug: {other:?}"),
    }
    fs::remove_dir_all(&out).ok();
}

/// A config the static verifier rejects is skipped, never executed.
#[test]
fn statically_rejected_configs_are_skipped_not_run() {
    let mut cfg = FuzzConfig::generate(DEFAULT_SEED);
    cfg.slots = 8192; // blows the pipe's SRAM budget
    match run_case(&cfg, Bug::None) {
        CaseOutcome::Skipped { reason } => {
            assert!(reason.contains("rejected"), "unexpected skip reason: {reason}");
        }
        other => panic!("oversized config was executed: {other:?}"),
    }
}

/// `corpus/` matches its in-tree definitions byte-for-byte.
#[test]
fn corpus_matches_pinned_definitions() {
    for (name, repro) in pinned_repros() {
        let path = corpus_dir().join(&name);
        let on_disk = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} (regenerate: cargo test --test fuzz_harness -- --ignored regenerate)",
                path.display()
            )
        });
        assert_eq!(
            on_disk,
            render_repro(&repro),
            "{name} drifted from its pinned definition \
             (regenerate: cargo test --test fuzz_harness -- --ignored regenerate)"
        );
    }
}

/// Every pinned regression replays clean against today's code.
#[test]
fn corpus_pinned_regressions_replay_clean() {
    let files = corpus_files(&corpus_dir()).expect("corpus directory");
    assert!(files.len() >= 3, "corpus too small: {files:?}");
    for file in files {
        let replay = replay_file(&file).expect("repro loads");
        match replay.outcome {
            CaseOutcome::Pass(stats) => {
                assert!(stats.splits > 0, "{}: pinned case parks nothing", file.display());
            }
            other => panic!("{}: pinned regression resurfaced: {other:?}", file.display()),
        }
    }
}

/// Regenerates `corpus/` from [`pinned_repros`]. Ignored by default;
/// run explicitly after an intentional format or generator change.
#[test]
#[ignore = "writes into corpus/; run after intentional format changes"]
fn regenerate() {
    let dir = corpus_dir();
    fs::create_dir_all(&dir).expect("corpus dir");
    for (name, repro) in pinned_repros() {
        fs::write(dir.join(&name), render_repro(&repro)).expect("write repro");
        println!("wrote corpus/{name}");
    }
}
