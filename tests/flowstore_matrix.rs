//! FlowStore-swap equivalence over the adversity matrix.
//!
//! The park table is behind the [`payloadpark::FlowStore`] trait; the
//! dataplane program must not care which store implementation backs it.
//! This suite drives the full scenario matrix of `adversity_matrix.rs` —
//! loss, bounded reordering, duplication, truncation, scripted
//! blackouts, their combination, and payload corruption, all under the
//! identical seeded misfortune — through four single-switch builds of
//! the same deployment:
//!
//! 1. the register-backed reference (`build_switch`),
//! 2. the store program over the circular-buffer store,
//! 3. the store program over the generational slab store, and
//! 4. the slab store with a deliberately tiny hot tier, so cold parked
//!    payloads demote to the spill tier mid-run.
//!
//! Every path must be *exactly* equivalent: identical counter totals,
//! identical switch statistics, identical occupancy, identical fault
//! tallies, and an identical delivered byte set. A dedicated probe
//! pins that the tiny hot tier really does demote payloads mid-wave —
//! otherwise the spill cells would prove nothing.

use payloadpark::flowstore::shared;
use payloadpark::{
    build_store_switch, oracle, CircularStore, CounterSnapshot, SlabStore, StoreControl,
};
use pp_fastpath::SlicedTestbed;
use pp_netsim::adversity::{AdversityProfile, FaultTally, LegProfile, SeqWindow};
use pp_rmt::switch::{BatchPacket, SwitchOutput, SwitchStats};

const SCENARIO_SEED: u64 = 77;
const WAVE_SEED: u64 = 9;
/// Two waves of 200: the second wave wraps the 4 × 48-slot table and
/// ages out whatever the first wave's adversity orphaned.
const WAVE_PACKETS: usize = 200;
const TB: SlicedTestbed = SlicedTestbed { slices: 4, slots: 48 };

/// The adversity matrix, verbatim from `adversity_matrix.rs`.
fn scenarios() -> Vec<(&'static str, AdversityProfile)> {
    let base = AdversityProfile { seed: SCENARIO_SEED, ..Default::default() };
    vec![
        ("loss", AdversityProfile { from_nf: LegProfile::loss(0.25), ..base.clone() }),
        (
            "reorder",
            AdversityProfile {
                from_nf: LegProfile { reorder: 0.5, max_displacement: 40, ..Default::default() },
                ..base.clone()
            },
        ),
        (
            "dup",
            AdversityProfile {
                from_nf: LegProfile { duplicate: 0.3, ..Default::default() },
                ..base.clone()
            },
        ),
        (
            "truncate",
            AdversityProfile {
                from_nf: LegProfile { truncate: 0.3, ..Default::default() },
                ..base.clone()
            },
        ),
        (
            "blackout",
            AdversityProfile {
                from_nf: LegProfile {
                    blackouts: vec![SeqWindow { from: 60, to: 140 }],
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "combined",
            AdversityProfile {
                to_nf: LegProfile::loss(0.05),
                from_nf: LegProfile {
                    drop: 0.15,
                    duplicate: 0.15,
                    truncate: 0.15,
                    reorder: 0.3,
                    max_displacement: 24,
                    ..Default::default()
                },
                ..base.clone()
            },
        ),
        (
            "corrupt",
            AdversityProfile { from_nf: LegProfile { corrupt: 0.4, ..Default::default() }, ..base },
        ),
    ]
}

/// Canonical delivered *set*: reordering legitimately permutes arrival
/// order, so paths are compared on sorted (seq, bytes) pairs.
fn canonical(outs: Vec<SwitchOutput>) -> Vec<(u64, Vec<u8>)> {
    let mut set: Vec<(u64, Vec<u8>)> = outs.into_iter().map(|o| (o.seq, o.bytes)).collect();
    set.sort();
    set
}

#[derive(Debug)]
struct PathResult {
    delivered: Vec<(u64, Vec<u8>)>,
    counters: CounterSnapshot,
    stats: SwitchStats,
    occupancy: usize,
    tally: FaultTally,
}

fn register_run(waves: &[&[BatchPacket]], adv: &AdversityProfile) -> PathResult {
    let (mut sw, control) = TB.build_scalar();
    let mut tally = FaultTally::default();
    let mut delivered = Vec::new();
    for wave in waves {
        delivered.extend(TB.scalar_roundtrip_two_phase_adverse(&mut sw, wave, adv, &mut tally));
    }
    PathResult {
        delivered: canonical(delivered),
        counters: control.counters(&sw),
        stats: sw.stats(),
        occupancy: control.occupancy(&sw),
        tally,
    }
}

fn store_run(
    waves: &[&[BatchPacket]],
    adv: &AdversityProfile,
    store: payloadpark::SharedStore,
) -> PathResult {
    let (mut sw, control): (_, StoreControl) =
        build_store_switch(&TB.config(), store).expect("store switch builds");
    TB.wire(&mut |mac, port| sw.l2_add(mac, port));
    let mut tally = FaultTally::default();
    let mut delivered = Vec::new();
    for wave in waves {
        delivered.extend(TB.scalar_roundtrip_two_phase_adverse(&mut sw, wave, adv, &mut tally));
    }
    PathResult {
        delivered: canonical(delivered),
        counters: control.counters(&sw),
        stats: sw.stats(),
        occupancy: control.occupancy(),
        tally,
    }
}

fn assert_equivalent(name: &str, kind: &str, reference: &PathResult, got: &PathResult) {
    let ctx = format!("{name} ({kind})");
    assert_eq!(got.tally, reference.tally, "{ctx}: fault tallies diverged");
    assert_eq!(got.counters, reference.counters, "{ctx}: counters diverged");
    assert_eq!(got.stats, reference.stats, "{ctx}: switch stats diverged");
    assert_eq!(got.occupancy, reference.occupancy, "{ctx}: occupancy diverged");
    assert_eq!(got.delivered.len(), reference.delivered.len(), "{ctx}: delivered count diverged");
    for (g, r) in got.delivered.iter().zip(&reference.delivered) {
        assert_eq!(g, r, "{ctx}: delivered byte set diverged");
    }
    oracle::check_counters(&got.counters, got.occupancy).assert_ok();
}

fn run_matrix(mixed: bool) {
    let cfg = TB.config();
    let total_slots = cfg.pipes[0].total_slots();
    let blocks = cfg.primary_blocks;
    let inputs = if mixed {
        TB.counted_mixed_wave(WAVE_SEED, 2 * WAVE_PACKETS)
    } else {
        TB.counted_enterprise_wave(WAVE_SEED, 2 * WAVE_PACKETS)
    };
    let waves = [&inputs[..WAVE_PACKETS], &inputs[WAVE_PACKETS..]];

    for (name, adv) in scenarios() {
        let reference = register_run(&waves, &adv);
        assert!(reference.counters.splits > 0, "{name}: workload must park");

        let circular = store_run(&waves, &adv, shared(CircularStore::new(total_slots, blocks)));
        assert_equivalent(name, "circular", &reference, &circular);

        let slab = store_run(&waves, &adv, shared(SlabStore::new(total_slots, blocks)));
        assert_equivalent(name, "slab", &reference, &slab);

        // A hot tier of 8 payloads against ~200 parked flows: the slab
        // demotes constantly, and must still be byte-identical.
        let spilling =
            store_run(&waves, &adv, shared(SlabStore::with_spill(total_slots, blocks, 8)));
        assert_equivalent(name, "slab+spill", &reference, &spilling);
    }
}

/// The spill cells above only prove something if the tiny hot tier
/// actually demotes. Park a full wave (split phase only, nothing merges
/// back yet) and watch the gauge: everything beyond the 8 hottest
/// payloads must sit in the spill tier.
#[test]
fn tiny_hot_tier_demotes_mid_wave() {
    let cfg = TB.config();
    let total_slots = cfg.pipes[0].total_slots();
    let store = shared(SlabStore::with_spill(total_slots, cfg.primary_blocks, 8));
    let (mut sw, control) = build_store_switch(&TB.config(), store).expect("store switch builds");
    TB.wire(&mut |mac, port| sw.l2_add(mac, port));
    let wave = TB.counted_enterprise_wave(WAVE_SEED, WAVE_PACKETS);
    let mut outs = Vec::new();
    for pkt in &wave {
        outs.extend(sw.process(&pkt.bytes, pkt.port, pkt.seq));
    }
    let parked = control.occupancy();
    assert!(parked > 8, "wave too small to overflow the hot tier");
    assert_eq!(control.spilled(), parked - 8, "all but the hot tier must demote");

    // Merging restores spilled payloads byte-for-byte: drain the wave
    // and the gauge follows the occupancy down to zero.
    for out in outs {
        let mut back = out.bytes;
        back[0..6].copy_from_slice(&TB.sink_mac().0);
        sw.process(&back, out.port, out.seq);
    }
    assert_eq!(control.occupancy(), 0);
    assert_eq!(control.spilled(), 0);
}

#[test]
fn store_swap_is_invisible_on_udp_only_waves() {
    run_matrix(false);
}

#[test]
fn store_swap_is_invisible_on_mixed_tcp_udp_waves() {
    run_matrix(true);
}
