//! The flight recorder under a forced conformance violation.
//!
//! The oracle's JSONL dump is the observability story's last mile: when
//! the split/merge ledger stops balancing, the operator gets the sampled
//! packet traces that led up to it. These tests force a violation the way
//! an operator mistake would — a control-plane table reset while packets
//! are still parked — and assert the dump carries the offending packets'
//! traces.

use payloadpark::oracle;
use pp_fastpath::SlicedTestbed;

#[test]
fn forced_violation_dumps_the_offending_traces() {
    let tb = SlicedTestbed::new(2, 1024);
    let (mut sw, ctl) = tb.build_scalar();
    // 512 packets cover eight 1-in-64 sample points, so the ring holds
    // several sampled Split traces whatever the mix dealt those seqs.
    let wave = tb.counted_enterprise_wave(5, 512);

    // Split phase only: park payloads without merging any back.
    let mut parked_seqs = std::collections::HashSet::new();
    for pkt in &wave {
        for out in sw.process(&pkt.bytes, pkt.port, pkt.seq) {
            parked_seqs.insert(out.seq);
        }
    }
    let counters = ctl.counters(&sw);
    assert!(counters.splits > 0, "the wave must park payloads");
    assert_eq!(counters.splits as usize, ctl.occupancy(&sw), "ledger balanced before tampering");

    // Tamper: a table reset wipes the parked slots but not the counters —
    // the splits can no longer be accounted for.
    ctl.clear_tables(&mut sw);
    let report = oracle::check_counters(&counters, ctl.occupancy(&sw));
    assert!(!report.ok(), "cleared tables must break the split/merge ledger");

    let dump = oracle::flight_dump(&report, sw.recorder()).expect("violation with traces dumps");
    assert!(dump.lines().count() > 0);
    for line in dump.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "not JSONL: {line:?}");
    }
    // The dump must tie back to the offending packets: at least one
    // sampled trace carries a split decision under a seq the run parked.
    let offending = dump.lines().any(|line| {
        line.contains("\"split\"")
            && parked_seqs.iter().any(|seq| line.contains(&format!("\"seq\":{seq},")))
    });
    assert!(offending, "no parked packet's split trace in the dump:\n{dump}");
}

#[test]
fn clean_runs_never_dump() {
    let tb = SlicedTestbed::new(2, 256);
    let (mut sw, ctl) = tb.build_scalar();
    let wave = tb.counted_enterprise_wave(9, 150);
    let merged = tb.scalar_roundtrip(&mut sw, &wave);
    assert!(!merged.is_empty());
    let report = oracle::check_counters(&ctl.counters(&sw), ctl.occupancy(&sw));
    assert!(report.ok(), "{:?}", report.violations());
    assert!(oracle::flight_dump(&report, sw.recorder()).is_none());
    // The recorder still held traces — the dump was withheld because the
    // run was clean, not because nothing was recorded.
    assert!(!sw.recorder().is_empty());
}

#[test]
fn disabled_telemetry_yields_no_dump_even_on_violation() {
    let tb = SlicedTestbed::new(2, 256);
    let (mut sw, ctl) = tb.build_scalar();
    sw.set_telemetry(false);
    let wave = tb.counted_enterprise_wave(5, 100);
    for pkt in &wave {
        let _ = sw.process(&pkt.bytes, pkt.port, pkt.seq);
    }
    let counters = ctl.counters(&sw);
    ctl.clear_tables(&mut sw);
    let report = oracle::check_counters(&counters, ctl.occupancy(&sw));
    assert!(!report.ok());
    assert!(
        oracle::flight_dump(&report, sw.recorder()).is_none(),
        "no traces were recorded, so there is nothing to dump"
    );
}
