//! Steady-state allocation discipline of the batched hot path.
//!
//! The zero-copy refactor pools every per-packet buffer the switch needs
//! (PHVs, origin/by-pipe scratch, the deparse arena, recirculation
//! ping-pong frames), so a warm [`SwitchModel::process_batch`] must not
//! touch the heap at all. This test wraps the system allocator in a
//! counting shim, runs two warm-up batches to size the pools, and then
//! asserts the third batch performs exactly zero allocations.

use pp_fastpath::SlicedTestbed;
use pp_rmt::switch::BatchOutput;
use pp_rmt::SwitchModel;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation and reallocation routed through the global
/// allocator (deallocations are free to happen — returning pooled memory
/// is not the property under test).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pure pass-through to the system allocator plus a relaxed
// counter bump; every contract (layout validity, pointer provenance) is
// forwarded unchanged to `System`, whose caller-side obligations are
// exactly ours.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as our own caller's.
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: ptr/layout/new_size are forwarded from our caller intact.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: ptr was allocated by `alloc`/`realloc` above, which
        // delegate to `System` with the same layout.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Runs `batches` identical waves through `process_batch` and returns the
/// allocation count of the last one.
fn allocs_in_last_batch(sw: &mut SwitchModel, tb: &SlicedTestbed, batches: usize) -> u64 {
    let wave = tb.counted_mixed_wave(17, 256);
    let mut out = BatchOutput::new();
    let mut last = 0;
    for _ in 0..batches {
        let before = allocs();
        sw.process_batch(&wave, &mut out);
        last = allocs() - before;
        assert!(!out.is_empty(), "the wave must produce egress packets");
    }
    last
}

#[test]
fn warm_process_batch_never_allocates() {
    let tb = SlicedTestbed::new(8, 2048);

    // The full PayloadPark program: split-side block extraction, register
    // stores, metadata table writes, shim insertion.
    let (mut park, _) = tb.build_scalar();
    let park_allocs = allocs_in_last_batch(&mut park, &tb, 3);
    assert_eq!(
        park_allocs, 0,
        "3rd batch through the PayloadPark program allocated {park_allocs} times"
    );
}
