//! Cluster-tier conformance (acceptance oracle for the distributed tier).
//!
//! Three pins, all on the shared 8-server slicing under seeded
//! adversity:
//!
//! 1. **Anchor** — a one-switch cluster is *exactly* the scalar
//!    reference: identical counters, statistics, occupancy, fault tally
//!    and delivered byte set, for both store backends. Everything the
//!    cluster adds (routing, attachment, the mesh) must vanish at N=1.
//! 2. **Blackout** — at N ∈ {2, 4}, park a wave, kill one switch, and
//!    run the adverse merge wave: the cluster-wide oracle holds (zero
//!    leaked slots), the dead switch's share is charged at its front
//!    panel, and the survivors keep serving fresh traffic end to end.
//! 3. **Churn** — join and leave with flows in flight under adversity:
//!    migrations preserve occupancy, proxy-merges restore across the
//!    mesh, departed history stays on the books, and the oracle holds
//!    at every step.

use payloadpark::CounterSnapshot;
use pp_cluster::{Cluster, ClusterConfig, StoreKind};
use pp_fastpath::{adverse_return_wave, SlicedTestbed};
use pp_netsim::adversity::{AdversityProfile, FaultTally, LegProfile};
use pp_rmt::switch::SwitchOutput;

const SLICES: usize = 8;
const SLOTS: usize = 48;
const PACKETS: usize = 200;
const TB: SlicedTestbed = SlicedTestbed { slices: SLICES, slots: SLOTS };

fn build(cfg: ClusterConfig) -> Cluster {
    let mut cluster = Cluster::new(&TB.config(), cfg).expect("cluster builds");
    TB.wire(&mut |mac, port| cluster.l2_add(mac, port));
    cluster
}

/// The seeded misfortune every path here suffers: light loss both ways
/// plus duplication on the return leg.
fn adversity() -> AdversityProfile {
    AdversityProfile {
        seed: 77,
        to_nf: LegProfile::loss(0.05),
        from_nf: LegProfile { drop: 0.1, duplicate: 0.1, ..Default::default() },
    }
}

fn canonical(outs: Vec<SwitchOutput>) -> Vec<(u64, Vec<u8>)> {
    let mut set: Vec<(u64, Vec<u8>)> = outs.into_iter().map(|o| (o.seq, o.bytes)).collect();
    set.sort();
    set
}

#[test]
fn one_switch_cluster_is_the_scalar_reference() {
    let inputs = TB.counted_enterprise_wave(31, 2 * PACKETS);
    let waves = [&inputs[..PACKETS], &inputs[PACKETS..]];
    let adv = adversity();

    let (mut sw, control) = TB.build_scalar();
    let mut scalar_tally = FaultTally::default();
    let mut scalar_out = Vec::new();
    for wave in waves {
        scalar_out.extend(TB.scalar_roundtrip_two_phase_adverse(
            &mut sw,
            wave,
            &adv,
            &mut scalar_tally,
        ));
    }
    let scalar_out = canonical(scalar_out);
    let scalar_counters = control.counters(&sw);
    assert!(scalar_counters.splits > 0, "workload must park");

    for cfg in [ClusterConfig::circular(1), ClusterConfig::slab(1)] {
        let kind = format!("{:?}", cfg.store);
        let mut cluster = build(cfg);
        let mut tally = FaultTally::default();
        let mut merged = Vec::new();
        for wave in waves {
            merged.extend(cluster.roundtrip_adverse(wave, TB.sink_mac(), &adv, &mut tally));
        }
        assert_eq!(tally, scalar_tally, "{kind}: fault tallies diverged");
        assert_eq!(cluster.cluster_counters(), scalar_counters, "{kind}: counters diverged");
        assert_eq!(cluster.cluster_stats(), sw.stats(), "{kind}: switch stats diverged");
        assert_eq!(cluster.occupancy(), control.occupancy(&sw), "{kind}: occupancy diverged");
        let merged = canonical(merged);
        assert_eq!(merged.len(), scalar_out.len(), "{kind}: delivered count diverged");
        for (c, s) in merged.iter().zip(&scalar_out) {
            assert_eq!(c, s, "{kind}: delivered byte set diverged");
        }
        // And nothing clusterish happened: one switch needs no mesh.
        assert_eq!(cluster.counters().proxy_merges, 0, "{kind}");
        assert_eq!(cluster.counters().blackout_drops, 0, "{kind}");
        cluster.check_oracle().assert_ok();
    }
}

/// Balance check shared by the blackout cells: occupied slots must equal
/// what the counters say is still parked.
fn assert_no_leak(cluster: &Cluster, ctx: &str) {
    let t: CounterSnapshot = cluster.cluster_counters();
    assert_eq!(cluster.occupancy() as i64, t.outstanding(), "{ctx}: leaked slots");
    cluster.check_oracle().assert_ok();
}

#[test]
fn blackout_leaks_nothing_and_survivors_keep_serving() {
    let adv = adversity();
    for switches in [2usize, 4] {
        let ctx = format!("N={switches}");
        let mut cluster = build(ClusterConfig::slab(switches));
        let mut tally = FaultTally::default();

        // Park a wave, then one switch goes dark before the merges.
        let inputs = TB.counted_enterprise_wave(32, PACKETS);
        let outs = cluster.process_wave(&inputs);
        let down = cluster.switch_ids()[0];
        cluster.set_down(down, true);
        let back = adverse_return_wave(&adv, outs, TB.sink_mac(), &mut tally);
        cluster.process_return_wave(back);

        let after_wave1 = cluster.cluster_counters();
        assert!(after_wave1.merges > 0, "{ctx}: survivors merged nothing");
        assert!(cluster.counters().blackout_drops > 0, "{ctx}: the dead switch absorbed nothing");
        assert_no_leak(&cluster, &ctx);

        // Survivors keep serving: a fresh wave parks and merges on the
        // live switches (the dead switch's ports drop at ingress).
        let wave2 = TB.counted_enterprise_wave(33, PACKETS);
        let outs2 = cluster.process_wave(&wave2);
        assert!(!outs2.is_empty(), "{ctx}: live switches split nothing");
        let back2 = adverse_return_wave(&adv, outs2, TB.sink_mac(), &mut tally);
        cluster.process_return_wave(back2);
        let after_wave2 = cluster.cluster_counters();
        assert!(after_wave2.merges > after_wave1.merges, "{ctx}: survivors stopped serving");
        assert_no_leak(&cluster, &ctx);

        // The dead switch never served the second wave.
        let dead_after = cluster.switch_counters(down).unwrap();
        cluster.set_down(down, false);
        assert_eq!(
            cluster.switch_counters(down).unwrap(),
            dead_after,
            "{ctx}: a downed switch processed traffic"
        );
    }
}

#[test]
fn churn_under_adversity_stays_oracle_clean() {
    let adv = adversity();
    let mut cluster = build(ClusterConfig::slab(2));
    let mut tally = FaultTally::default();

    // Wave 1 parks on two switches; a third joins with flows in flight.
    let inputs = TB.counted_enterprise_wave(34, PACKETS);
    let outs = cluster.process_wave(&inputs);
    let occupied = cluster.occupancy();
    cluster.join().expect("switch 2 joins");
    assert_eq!(cluster.occupancy(), occupied, "migration lost parked flows");
    assert!(cluster.counters().rebalance_moved_flows > 0, "nothing migrated");
    cluster.check_oracle().assert_ok();

    // The migrated slices' merges proxy over the mesh and restore.
    let back = adverse_return_wave(&adv, outs, TB.sink_mac(), &mut tally);
    cluster.process_return_wave(back);
    assert!(cluster.counters().proxy_merges > 0, "no merge crossed the mesh");
    cluster.check_oracle().assert_ok();

    // Wave 2 in flight while a switch leaves: its history retires, its
    // flows migrate to the survivors, and the books still balance.
    let wave2 = TB.counted_enterprise_wave(35, PACKETS);
    let outs2 = cluster.process_wave(&wave2);
    let gone = cluster.switch_ids()[0];
    cluster.leave(gone).expect("a three-switch cluster can lose one");
    assert!(!cluster.switch_ids().contains(&gone));
    cluster.check_oracle().assert_ok();
    let back2 = adverse_return_wave(&adv, outs2, TB.sink_mac(), &mut tally);
    cluster.process_return_wave(back2);
    cluster.check_oracle().assert_ok();

    // Every merge of both waves happened (minus what adversity ate):
    // the survivors' books carry the departed switch's splits forever.
    let totals = cluster.cluster_counters();
    assert!(totals.merges > 0);
    assert_eq!(cluster.occupancy() as i64, totals.outstanding(), "churn leaked slots");
}

/// Spill-tier payloads must survive rebalance migration byte-for-byte
/// (the pp-fuzz satellite regression): park a wave onto switches whose
/// hot tier is far too small — most payloads demote to the spill map —
/// then join and leave with everything still parked, and finally merge.
/// Every delivered packet must match the scalar reference exactly, the
/// spill gauge must track the demoted population across migrations, and
/// the books must balance at every step.
#[test]
fn spill_tier_payloads_survive_rebalance_byte_identical() {
    const HOT: usize = 8;
    let wave = TB.counted_enterprise_wave(36, PACKETS);

    // Scalar reference: the same wave, two-phase, no cluster, no churn.
    let (mut sw, control) = TB.build_scalar();
    let scalar_out = canonical(TB.scalar_roundtrip_two_phase(&mut sw, &wave));
    assert!(control.counters(&sw).splits as usize > 2 * HOT, "wave must overflow the hot tier");

    let mut cluster = build(ClusterConfig {
        store: StoreKind::SlabSpill { hot_capacity: HOT },
        ..ClusterConfig::slab(2)
    });

    // Split phase: with two switches and an 8-payload hot tier each,
    // most parked payloads must demote before anything merges.
    let outs = cluster.process_wave(&wave);
    let parked = cluster.occupancy();
    let spilled_before = cluster.spilled();
    assert!(spilled_before > 0, "nothing demoted to the spill tier");
    assert!(parked > spilled_before, "hot tier unused");
    cluster.check_oracle().assert_ok();

    // Churn with every payload still parked: a third switch joins
    // (spilled payloads migrate store-to-store), then the lowest
    // original switch leaves (its spill tier migrates again).
    cluster.join().expect("switch 2 joins");
    assert_eq!(cluster.occupancy(), parked, "join lost parked flows");
    assert!(cluster.counters().rebalance_moved_flows > 0, "nothing migrated");
    assert!(cluster.spilled() <= parked, "spill gauge exceeds the parked population");
    cluster.check_oracle().assert_ok();

    let gone = cluster.switch_ids()[0];
    cluster.leave(gone).expect("a three-switch cluster can lose one");
    assert_eq!(cluster.occupancy(), parked, "leave lost parked flows");
    // Two survivors, 8 hot payloads each: the overflow is still demoted.
    assert!(cluster.spilled() >= parked.saturating_sub(2 * HOT), "demoted payloads vanished");
    cluster.check_oracle().assert_ok();

    // Merge phase: every payload — hot or spilled, migrated twice —
    // restores byte-identically to the scalar reference.
    let back: Vec<_> = outs
        .into_iter()
        .map(|mut pkt| {
            pkt.bytes[0..6].copy_from_slice(&TB.sink_mac().0);
            pkt
        })
        .collect();
    let merged = canonical(cluster.process_return_wave(back));
    assert_eq!(merged.len(), scalar_out.len(), "delivered count diverged");
    for (c, s) in merged.iter().zip(&scalar_out) {
        assert_eq!(c, s, "delivered byte set diverged");
    }
    assert_eq!(cluster.occupancy(), 0, "merges left flows parked");
    assert_eq!(cluster.spilled(), 0, "spill gauge leaked after restore");
    cluster.check_oracle().assert_ok();
}
