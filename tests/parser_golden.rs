//! Golden equivalence for the zero-copy parser/deparser.
//!
//! The arena/span refactor replaced the PHV's owned `Vec<u8>` body and
//! option buffers with [`Span`]s into the source frame. These tests pin
//! the new path to the old one's observable behaviour over the seeded
//! mixed TCP+UDP wave corpus the PR 3/4 oracles replay:
//!
//! 1. parse → deparse is still the byte identity on every corpus packet
//!    (the old owned-buffer guarantee), and
//! 2. the span-splicing deparser emits exactly what a copy-based
//!    reference deparser emits — the reference materializes every span
//!    into an owned buffer first, reproducing the pre-refactor data flow.
//!
//! [`Span`]: pp_rmt::phv::Span

use pp_fastpath::SlicedTestbed;
use pp_packet::checksum::Checksum;
use pp_packet::ppark::PAYLOADPARK_HEADER_LEN;
use pp_rmt::parser::{deparse_phv, parse_packet, BlockRule, ParserConfig};
use pp_rmt::{Phv, PortId};

const SLICES: usize = 8;

fn testbed() -> SlicedTestbed {
    SlicedTestbed::new(SLICES, 2048)
}

/// A split-side parser covering every testbed split port, mirroring the
/// program the PR 3/4 waves actually hit.
fn split_config(tb: &SlicedTestbed) -> ParserConfig {
    let mut cfg = ParserConfig { phv_block_capacity: 10, ..Default::default() };
    for k in 0..SLICES {
        cfg.block_rules.insert(tb.split_port(k).0, BlockRule { blocks: 10, min_payload: 160 });
        cfg.pp_header_ports.insert(tb.merge_port(k).0);
    }
    cfg
}

/// Copy-based reference deparser: materializes each span into an owned
/// buffer before emitting, exactly as the pre-refactor PHV (owned
/// `Vec<u8>` body/options) serialized. Field semantics match
/// [`deparse_phv`]: recomputed IPv4 checksum, zeroed transport checksum
/// on the parked (ENB=1) leg.
fn reference_deparse(phv: &Phv, frame: &[u8]) -> Vec<u8> {
    let body: Vec<u8> = phv.body.slice(frame).to_vec();
    let mut out = Vec::new();
    out.extend_from_slice(&phv.eth.dst.0);
    out.extend_from_slice(&phv.eth.src.0);
    out.extend_from_slice(&phv.eth.ethertype.to_be_bytes());
    let Some(ip) = &phv.ipv4 else {
        out.extend_from_slice(&body);
        return out;
    };
    let ip_options: Vec<u8> = ip.options.slice(frame).to_vec();
    let ihl = (20 + ip_options.len()) / 4;
    let ip_start = out.len();
    out.push(0x40 | ihl as u8);
    out.push(0);
    out.extend_from_slice(&ip.total_len.to_be_bytes());
    out.extend_from_slice(&ip.ident.to_be_bytes());
    out.extend_from_slice(&[0, 0]);
    out.push(ip.ttl);
    out.push(ip.protocol);
    out.extend_from_slice(&[0, 0]);
    out.extend_from_slice(&ip.src.to_be_bytes());
    out.extend_from_slice(&ip.dst.to_be_bytes());
    out.extend_from_slice(&ip_options);
    let mut c = Checksum::new();
    c.add_bytes(&out[ip_start..]);
    let ck = c.finish();
    out[ip_start + 10..ip_start + 12].copy_from_slice(&ck.to_be_bytes());

    let parked = phv.pp.valid && phv.pp.enb;
    if let Some(udp) = &phv.udp {
        out.extend_from_slice(&udp.src_port.to_be_bytes());
        out.extend_from_slice(&udp.dst_port.to_be_bytes());
        out.extend_from_slice(&udp.len.to_be_bytes());
        let ck = if parked { 0 } else { udp.checksum };
        out.extend_from_slice(&ck.to_be_bytes());
    } else if let Some(tcp) = &phv.tcp {
        let tcp_options: Vec<u8> = tcp.options.slice(frame).to_vec();
        out.extend_from_slice(&tcp.src_port.to_be_bytes());
        out.extend_from_slice(&tcp.dst_port.to_be_bytes());
        out.extend_from_slice(&tcp.seq.to_be_bytes());
        out.extend_from_slice(&tcp.ack.to_be_bytes());
        let data_offset = (20 + tcp_options.len()) / 4;
        out.push(((data_offset as u8) << 4) | (tcp.reserved & 0x0F));
        out.push(tcp.flags);
        out.extend_from_slice(&tcp.window.to_be_bytes());
        let ck = if parked { 0 } else { tcp.checksum };
        out.extend_from_slice(&ck.to_be_bytes());
        out.extend_from_slice(&tcp.urgent.to_be_bytes());
        out.extend_from_slice(&tcp_options);
    } else {
        out.extend_from_slice(&body);
        return out;
    }
    if phv.pp.valid {
        let mut hdr = [0u8; PAYLOADPARK_HEADER_LEN];
        hdr[0] = (u8::from(phv.pp.enb) << 7) | (u8::from(phv.pp.op_drop) << 6);
        hdr[1..3].copy_from_slice(&phv.pp.tbl_idx.to_be_bytes());
        hdr[3..5].copy_from_slice(&phv.pp.clk.to_be_bytes());
        hdr[5..7].copy_from_slice(&phv.pp.crc.to_be_bytes());
        out.extend_from_slice(&hdr);
    }
    for block in phv.blocks.iter().filter(|b| b.valid) {
        out.extend_from_slice(&block.data);
    }
    out.extend_from_slice(&body);
    out
}

#[test]
fn corpus_roundtrip_identity_and_reference_equivalence() {
    let tb = testbed();
    let split = split_config(&tb);
    let l2 = ParserConfig::l2_only();
    let mut block_packets = 0usize;
    for seed in [9u64, 23, 40] {
        for pkt in tb.counted_mixed_wave(seed, 400) {
            // Plain L2 parse: identity and reference equivalence.
            let phv = parse_packet(&l2, &pkt.bytes, PortId(63), pkt.seq).unwrap();
            let new = deparse_phv(&phv, &pkt.bytes);
            assert_eq!(new, pkt.bytes, "seed {seed} seq {} (l2): not identity", pkt.seq);
            assert_eq!(new, reference_deparse(&phv, &pkt.bytes));

            // Split-port parse (blocks lifted into the PHV): still the
            // identity, and still byte-equal to the copying reference.
            let phv = parse_packet(&split, &pkt.bytes, pkt.port, pkt.seq).unwrap();
            block_packets += usize::from(phv.blocks.iter().any(|b| b.valid));
            let new = deparse_phv(&phv, &pkt.bytes);
            assert_eq!(new, pkt.bytes, "seed {seed} seq {} (split): not identity", pkt.seq);
            assert_eq!(new, reference_deparse(&phv, &pkt.bytes));
        }
    }
    // The corpus must actually exercise the block-extraction path.
    assert!(block_packets > 100, "only {block_packets} packets split blocks");
}

#[test]
fn corpus_scalar_roundtrip_outputs_reparse_cleanly() {
    // Full Split → NF → Merge over the corpus: every merged output must
    // itself parse with in-bounds spans and deparse back to its own bytes
    // (the sink-side frames are ordinary UDP/TCP packets again).
    let tb = testbed();
    let (mut sw, _) = tb.build_scalar();
    let wave = tb.counted_mixed_wave(9, 400);
    let merged = tb.scalar_roundtrip(&mut sw, &wave);
    assert!(!merged.is_empty());
    let l2 = ParserConfig::l2_only();
    for out in &merged {
        let phv = parse_packet(&l2, &out.bytes, tb.sink_port(), out.seq).unwrap();
        assert!(phv.body.in_bounds(&out.bytes));
        assert_eq!(deparse_phv(&phv, &out.bytes), out.bytes);
    }
}
