//! The paper's functional-equivalence validation (§6.2.6): run identical
//! traffic through the baseline and PayloadPark deployments, capture what
//! arrives back at the generator, and require byte-identical captures plus
//! zero premature evictions.

use payloadpark::program::{build_baseline_switch, build_switch};
use payloadpark::{oracle, CounterSnapshot, ParkConfig, PipeControl};
use pp_fastpath::{adverse_return_wave, reflect_outputs, EngineConfig, SlicedTestbed};
use pp_netsim::adversity::{AdversityProfile, FaultTally, LegProfile};
use pp_netsim::time::SimDuration;
use pp_packet::pcap::{captures_identical, PcapReader, PcapRecord, PcapWriter};
use pp_packet::{MacAddr, Packet, ParsedPacket};
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::{BatchPacket, SwitchModel, SwitchOutput};
use pp_rmt::PortId;
use pp_trafficgen::gen::{GenConfig, SizeModel, TrafficGen, TrafficMix};
use proptest::prelude::*;

const SERVER_PORT: u16 = 2;
const SINK_PORT: u16 = 3;

fn server_mac() -> MacAddr {
    MacAddr::from_index(100)
}
fn sink_mac() -> MacAddr {
    MacAddr::from_index(200)
}

/// Plays `packets` through a deployment with a MAC-swapping "NF server"
/// and returns the pcap of what reaches the sink.
fn capture(switch: &mut SwitchModel, packets: &[(u64, Packet)]) -> Vec<PcapRecord> {
    let mut records = Vec::new();
    for (t, pkt) in packets {
        for out in switch.process(pkt.bytes(), PortId((pkt.seq() % 2) as u16), pkt.seq()) {
            assert_eq!(out.port, PortId(SERVER_PORT), "forward path goes to the server");
            // The MAC-swap NF: swap addresses, then the framework TX sets
            // the destination to the sink (as OpenNetVM's bridge would).
            let mut bytes = out.bytes;
            bytes[0..6].copy_from_slice(&sink_mac().0);
            for merged in switch.process(&bytes, PortId(SERVER_PORT), out.seq) {
                assert_eq!(merged.port, PortId(SINK_PORT));
                records
                    .push(PcapRecord::from_packet(&Packet::with_seq(merged.bytes, merged.seq), *t));
            }
        }
    }
    records
}

fn workload_with(mix: TrafficMix) -> Vec<(u64, Packet)> {
    let mut gen = TrafficGen::new(GenConfig {
        rate_gbps: 2.0,
        line_rate_gbps: 20.0,
        burst: 16,
        sizes: SizeModel::Enterprise,
        mix,
        flows: 32,
        dst_mac: server_mac(),
        seed: 99,
        ..Default::default()
    });
    gen.take_for(SimDuration::from_millis(2)).into_iter().map(|(t, p)| (t.nanos(), p)).collect()
}

fn workload() -> Vec<(u64, Packet)> {
    workload_with(TrafficMix::UdpOnly)
}

#[test]
fn payloadpark_is_functionally_equivalent_to_baseline() {
    let chip = ChipProfile::default();
    let packets = workload();
    assert!(packets.len() > 300, "workload too small: {}", packets.len());

    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac(), PortId(SERVER_PORT));
    baseline.l2_add(sink_mac(), PortId(SINK_PORT));
    let base_records = capture(&mut baseline, &packets);

    let cfg = ParkConfig::single_server(chip, vec![0, 1], SERVER_PORT, 8192);
    let (mut park, handles) = build_switch(&cfg).unwrap();
    park.l2_add(server_mac(), PortId(SERVER_PORT));
    park.l2_add(sink_mac(), PortId(SINK_PORT));
    let park_records = capture(&mut park, &packets);

    // Same number of packets delivered, byte-identical contents.
    assert_eq!(base_records.len(), packets.len());
    assert!(captures_identical(&base_records, &park_records));

    // And the switch reports no premature payload evictions.
    let control = PipeControl::new(handles[0].clone());
    let counters = control.counters(&park);
    assert!(counters.functionally_equivalent(), "{counters:?}");
    assert!(counters.splits > 0, "the workload must exercise parking");
    assert!(counters.disabled_small_payload > 0, "and the small-payload path");
}

/// The tentpole workload: the enterprise traffic the paper's target
/// datacenters actually carry is TCP-dominated. Parking must be
/// transparent for the mixed wave too, and every packet the sink receives
/// must carry valid IPv4 *and* transport checksums (the parked leg zeroes
/// the transport checksum; Merge restores the original).
#[test]
fn mixed_tcp_udp_wave_is_functionally_equivalent_to_baseline() {
    let chip = ChipProfile::default();
    let packets = workload_with(TrafficMix::TcpUdp { tcp_fraction: 0.7 });
    let tcp = packets.iter().filter(|(_, p)| p.parse().unwrap().five_tuple().protocol == 6).count();
    assert!(tcp > 0 && tcp < packets.len(), "need a genuine mix: {tcp}/{}", packets.len());

    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac(), PortId(SERVER_PORT));
    baseline.l2_add(sink_mac(), PortId(SINK_PORT));
    let base_records = capture(&mut baseline, &packets);

    let cfg = ParkConfig::single_server(chip, vec![0, 1], SERVER_PORT, 8192);
    let (mut park, handles) = build_switch(&cfg).unwrap();
    park.l2_add(server_mac(), PortId(SERVER_PORT));
    park.l2_add(sink_mac(), PortId(SINK_PORT));
    let park_records = capture(&mut park, &packets);

    assert_eq!(base_records.len(), packets.len());
    assert!(captures_identical(&base_records, &park_records));
    for rec in &park_records {
        let parsed = ParsedPacket::parse(&rec.bytes).unwrap();
        assert!(parsed.verify_checksums(), "bad checksum on {}", parsed.five_tuple());
    }

    let counters = PipeControl::new(handles[0].clone()).counters(&park);
    assert!(counters.functionally_equivalent(), "{counters:?}");
    assert!(counters.splits > 0, "the mixed workload must exercise parking");
    assert!(counters.disabled_small_payload > 0, "and the small/control-segment path");
}

#[test]
fn equivalence_holds_with_recirculation() {
    let chip = ChipProfile::default();
    let packets = workload();

    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac(), PortId(SERVER_PORT));
    baseline.l2_add(sink_mac(), PortId(SINK_PORT));
    let base_records = capture(&mut baseline, &packets);

    let mut cfg = ParkConfig::single_server(chip, vec![0, 1], SERVER_PORT, 8192);
    cfg.pipes[0].annex_pipe = Some(1);
    let (mut park, handles) = build_switch(&cfg).unwrap();
    park.l2_add(server_mac(), PortId(SERVER_PORT));
    park.l2_add(sink_mac(), PortId(SINK_PORT));
    let park_records = capture(&mut park, &packets);

    assert!(captures_identical(&base_records, &park_records));
    let counters = PipeControl::new(handles[0].clone()).counters(&park);
    assert!(counters.functionally_equivalent(), "{counters:?}");
    assert!(counters.splits > 0);
    assert!(park.stats().recirculations >= 2 * counters.splits);
}

// ---------------------------------------------------------------------
// pp_fastpath equivalence oracle: for any seeded enterprise traffic mix,
// the sharded, batched engine must produce the same counter totals and
// byte-identical merged payloads as the scalar pipeline.
// ---------------------------------------------------------------------

/// Two-phase reference: every packet splits through the scalar switch,
/// then every server return merges, in arrival order.
fn fp_scalar(tb: &SlicedTestbed, inputs: &[BatchPacket]) -> (Vec<SwitchOutput>, CounterSnapshot) {
    let (mut sw, control) = tb.build_scalar();
    let merged = tb.scalar_roundtrip_two_phase(&mut sw, inputs);
    let counters = control.counters(&sw);
    (merged, counters)
}

/// The same two phases through the sharded, batched engine.
fn fp_engine(
    tb: &SlicedTestbed,
    inputs: Vec<BatchPacket>,
    workers: usize,
) -> (Vec<SwitchOutput>, CounterSnapshot) {
    let mut engine = tb.build_engine(EngineConfig { workers, batch: 32, ring_depth: 4 }).unwrap();
    let to_servers = engine.process(inputs);
    let back = reflect_outputs(to_servers.iter(), tb.sink_mac());
    let merged = engine.process(back);
    (merged.to_seq_sorted(), engine.counters())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// §6.2.6, extended to the execution engine and the mixed TCP+UDP
    /// enterprise workload: sharded-batched output must match the scalar
    /// pipeline *exactly* — counter totals and byte-identical merged
    /// payloads — at 2 and 4 shards, including mixes that wrap the
    /// circular buffers (evictions and premature evictions of TCP-parked
    /// slots must then be identical too). Every merged packet must carry
    /// valid IPv4 and transport checksums.
    #[test]
    fn fastpath_matches_scalar_pipeline_on_mixed_traffic(
        seed in any::<u64>(),
        packets in 150usize..350,
        slots in 24usize..512,
    ) {
        let tb = SlicedTestbed::new(4, slots);
        let inputs = tb.counted_mixed_wave(seed, packets);
        let tcp = inputs
            .iter()
            .filter(|p| ParsedPacket::parse(&p.bytes).unwrap().five_tuple().protocol == 6)
            .count();
        prop_assert!(tcp > 0 && tcp < inputs.len(), "need a genuine mix: {}", tcp);
        let (scalar_merged, scalar_counters) = fp_scalar(&tb, &inputs);
        prop_assert!(scalar_counters.splits > 0, "workload must exercise parking");
        for out in &scalar_merged {
            let parsed = ParsedPacket::parse(&out.bytes).unwrap();
            prop_assert!(
                parsed.verify_checksums(),
                "bad checksum on merged seq {} ({})", out.seq, parsed.five_tuple()
            );
        }

        for workers in [2usize, 4] {
            let (engine_merged, engine_counters) =
                fp_engine(&tb, inputs.clone(), workers);
            prop_assert_eq!(
                &engine_counters, &scalar_counters,
                "counter totals diverged at {} workers", workers
            );
            prop_assert_eq!(
                engine_merged.len(), scalar_merged.len(),
                "merged packet count diverged at {} workers", workers
            );
            for (e, s) in engine_merged.iter().zip(&scalar_merged) {
                prop_assert_eq!(e, s, "merged payload diverged at {} workers", workers);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The adversity equivalence oracle: for any seeded mix of loss,
    /// duplication, truncation and bounded reordering on the internal NF
    /// legs, the sharded engine at 2 and 4 workers must agree with the
    /// scalar pipeline *exactly* — identical counter totals, identical
    /// fault tallies, and identical delivered byte sets — because every
    /// fault decision is a pure function of `(seed, leg, seq)`. The
    /// conformance oracle (no slot leaks, counters balance, delivered
    /// packets verify) must hold on every path.
    #[test]
    fn fastpath_matches_scalar_under_identical_seeded_adversity(
        seed in any::<u64>(),
        packets in 150usize..300,
        slots in 24usize..256,
        loss_pm in 0u32..300,
        dup_pm in 0u32..300,
        trunc_pm in 0u32..250,
        reorder_pm in 0u32..500,
    ) {
        // Per-mille knobs: the vendored proptest has no float strategies.
        let (loss, dup, trunc, reorder) = (
            f64::from(loss_pm) / 1000.0,
            f64::from(dup_pm) / 1000.0,
            f64::from(trunc_pm) / 1000.0,
            f64::from(reorder_pm) / 1000.0,
        );
        let tb = SlicedTestbed::new(4, slots);
        let inputs = tb.counted_mixed_wave(seed, packets);
        let adv = AdversityProfile {
            seed,
            to_nf: LegProfile::loss(loss * 0.3),
            from_nf: LegProfile {
                drop: loss,
                duplicate: dup,
                truncate: trunc,
                reorder,
                max_displacement: 32,
                ..Default::default()
            },
        };

        // Scalar two-phase reference under the scenario.
        let (mut sw, control) = tb.build_scalar();
        let mut scalar_tally = FaultTally::default();
        let scalar_merged =
            tb.scalar_roundtrip_two_phase_adverse(&mut sw, &inputs, &adv, &mut scalar_tally);
        let scalar_counters = control.counters(&sw);
        let scalar_occupancy = control.occupancy(&sw);
        prop_assert!(scalar_counters.splits > 0, "workload must exercise parking");
        let report = oracle::check_wave(
            &scalar_counters,
            scalar_occupancy,
            scalar_merged.iter().map(|o| o.bytes.as_slice()),
        );
        prop_assert!(report.ok(), "scalar oracle: {:?}", report.violations());

        let canonical = |mut outs: Vec<(u64, Vec<u8>)>| {
            outs.sort();
            outs
        };
        let scalar_set =
            canonical(scalar_merged.into_iter().map(|o| (o.seq, o.bytes)).collect());

        for workers in [2usize, 4] {
            let mut engine =
                tb.build_engine(EngineConfig { workers, batch: 32, ring_depth: 4 }).unwrap();
            let mut tally = FaultTally::default();
            let outs = engine
                .process(inputs.clone())
                .to_seq_sorted()
                .into_iter()
                .map(BatchPacket::from)
                .collect();
            let back = adverse_return_wave(&adv, outs, tb.sink_mac(), &mut tally);
            let merged = engine.process(back);
            prop_assert_eq!(&tally, &scalar_tally, "tallies diverged at {} workers", workers);
            prop_assert_eq!(
                &engine.counters(), &scalar_counters,
                "counters diverged at {} workers", workers
            );
            prop_assert_eq!(
                engine.occupancy(), scalar_occupancy,
                "occupancy diverged at {} workers", workers
            );
            let engine_set = canonical(
                merged.to_seq_sorted().into_iter().map(|o| (o.seq, o.bytes)).collect(),
            );
            prop_assert_eq!(
                engine_set.len(), scalar_set.len(),
                "delivered count diverged at {} workers", workers
            );
            for (e, s) in engine_set.iter().zip(&scalar_set) {
                prop_assert_eq!(e, s, "delivered byte set diverged at {} workers", workers);
            }
        }
    }
}

#[test]
fn captures_roundtrip_through_pcap_files() {
    // The capture/compare methodology itself must be faithful: write the
    // records to a pcap image and read them back.
    let chip = ChipProfile::default();
    let packets = workload();
    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac(), PortId(SERVER_PORT));
    baseline.l2_add(sink_mac(), PortId(SINK_PORT));
    let records = capture(&mut baseline, &packets);

    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for r in &records {
        w.write_record(r).unwrap();
    }
    let bytes = w.finish().unwrap();
    let reread = PcapReader::parse(&bytes).unwrap().into_records();
    assert!(captures_identical(&records, &reread));
}
