//! The paper's functional-equivalence validation (§6.2.6): run identical
//! traffic through the baseline and PayloadPark deployments, capture what
//! arrives back at the generator, and require byte-identical captures plus
//! zero premature evictions.

use payloadpark::program::{build_baseline_switch, build_switch};
use payloadpark::{ParkConfig, PipeControl};
use pp_packet::pcap::{captures_identical, PcapReader, PcapRecord, PcapWriter};
use pp_packet::{MacAddr, Packet};
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::SwitchModel;
use pp_rmt::PortId;
use pp_trafficgen::gen::{GenConfig, SizeModel, TrafficGen};
use pp_netsim::time::SimDuration;

const SERVER_PORT: u16 = 2;
const SINK_PORT: u16 = 3;

fn server_mac() -> MacAddr {
    MacAddr::from_index(100)
}
fn sink_mac() -> MacAddr {
    MacAddr::from_index(200)
}

/// Plays `packets` through a deployment with a MAC-swapping "NF server"
/// and returns the pcap of what reaches the sink.
fn capture(switch: &mut SwitchModel, packets: &[(u64, Packet)]) -> Vec<PcapRecord> {
    let mut records = Vec::new();
    for (t, pkt) in packets {
        for out in switch.process(pkt.bytes(), PortId((pkt.seq() % 2) as u16), pkt.seq()) {
            assert_eq!(out.port, PortId(SERVER_PORT), "forward path goes to the server");
            // The MAC-swap NF: swap addresses, then the framework TX sets
            // the destination to the sink (as OpenNetVM's bridge would).
            let mut bytes = out.bytes;
            bytes[0..6].copy_from_slice(&sink_mac().0);
            for merged in switch.process(&bytes, PortId(SERVER_PORT), out.seq) {
                assert_eq!(merged.port, PortId(SINK_PORT));
                records.push(PcapRecord::from_packet(
                    &Packet::with_seq(merged.bytes, merged.seq),
                    *t,
                ));
            }
        }
    }
    records
}

fn workload() -> Vec<(u64, Packet)> {
    let mut gen = TrafficGen::new(GenConfig {
        rate_gbps: 2.0,
        line_rate_gbps: 20.0,
        burst: 16,
        sizes: SizeModel::Enterprise,
        flows: 32,
        dst_mac: server_mac(),
        seed: 99,
        ..Default::default()
    });
    gen.take_for(SimDuration::from_millis(2))
        .into_iter()
        .map(|(t, p)| (t.nanos(), p))
        .collect()
}

#[test]
fn payloadpark_is_functionally_equivalent_to_baseline() {
    let chip = ChipProfile::default();
    let packets = workload();
    assert!(packets.len() > 300, "workload too small: {}", packets.len());

    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac(), PortId(SERVER_PORT));
    baseline.l2_add(sink_mac(), PortId(SINK_PORT));
    let base_records = capture(&mut baseline, &packets);

    let cfg = ParkConfig::single_server(chip, vec![0, 1], SERVER_PORT, 8192);
    let (mut park, handles) = build_switch(&cfg).unwrap();
    park.l2_add(server_mac(), PortId(SERVER_PORT));
    park.l2_add(sink_mac(), PortId(SINK_PORT));
    let park_records = capture(&mut park, &packets);

    // Same number of packets delivered, byte-identical contents.
    assert_eq!(base_records.len(), packets.len());
    assert!(captures_identical(&base_records, &park_records));

    // And the switch reports no premature payload evictions.
    let control = PipeControl::new(handles[0].clone());
    let counters = control.counters(&park);
    assert!(counters.functionally_equivalent(), "{counters:?}");
    assert!(counters.splits > 0, "the workload must exercise parking");
    assert!(counters.disabled_small_payload > 0, "and the small-payload path");
}

#[test]
fn equivalence_holds_with_recirculation() {
    let chip = ChipProfile::default();
    let packets = workload();

    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac(), PortId(SERVER_PORT));
    baseline.l2_add(sink_mac(), PortId(SINK_PORT));
    let base_records = capture(&mut baseline, &packets);

    let mut cfg = ParkConfig::single_server(chip, vec![0, 1], SERVER_PORT, 8192);
    cfg.pipes[0].annex_pipe = Some(1);
    let (mut park, handles) = build_switch(&cfg).unwrap();
    park.l2_add(server_mac(), PortId(SERVER_PORT));
    park.l2_add(sink_mac(), PortId(SINK_PORT));
    let park_records = capture(&mut park, &packets);

    assert!(captures_identical(&base_records, &park_records));
    let counters = PipeControl::new(handles[0].clone()).counters(&park);
    assert!(counters.functionally_equivalent(), "{counters:?}");
    assert!(counters.splits > 0);
    assert!(park.stats().recirculations >= 2 * counters.splits);
}

#[test]
fn captures_roundtrip_through_pcap_files() {
    // The capture/compare methodology itself must be faithful: write the
    // records to a pcap image and read them back.
    let chip = ChipProfile::default();
    let packets = workload();
    let mut baseline = build_baseline_switch(chip).unwrap();
    baseline.l2_add(server_mac(), PortId(SERVER_PORT));
    baseline.l2_add(sink_mac(), PortId(SINK_PORT));
    let records = capture(&mut baseline, &packets);

    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for r in &records {
        w.write_record(r).unwrap();
    }
    let bytes = w.finish().unwrap();
    let reread = PcapReader::parse(&bytes).unwrap().into_records();
    assert!(captures_identical(&records, &reread));
}
