//! The adversity scenario matrix (acceptance oracle).
//!
//! Every scenario — loss, bounded reordering, duplication, truncation,
//! scripted blackouts, their combination, and payload corruption — is
//! applied to UDP-only and mixed TCP+UDP enterprise waves and driven
//! through all three execution paths: the scalar two-phase reference and
//! the sharded engine at 2 and 4 workers, all suffering the *identical*
//! seeded misfortune (every fault decision is a pure function of
//! `(seed, leg, seq)`).
//!
//! For each cell of the matrix the conformance oracle must hold — the
//! counters balance against the occupied slots (no leaks, no
//! double-frees) and, for non-corrupting scenarios, every delivered
//! packet passes checksum verification — and the three paths must agree
//! exactly: identical counter totals, identical switch statistics,
//! identical fault tallies and identical delivered byte sets.

use payloadpark::{oracle, CounterSnapshot};
use pp_fastpath::{adverse_return_wave, EngineConfig, SlicedTestbed};
use pp_netsim::adversity::{AdversityProfile, FaultTally, LegProfile, SeqWindow};
use pp_rmt::switch::{BatchPacket, SwitchOutput, SwitchStats};

const SCENARIO_SEED: u64 = 77;
const WAVE_SEED: u64 = 9;
/// Two waves of 200: the second wave's splits wrap the 4 × 48-slot table
/// and age out whatever the first wave's adversity orphaned.
const WAVE_PACKETS: usize = 200;
const TB: SlicedTestbed = SlicedTestbed { slices: 4, slots: 48 };

/// One matrix scenario: a name, the profile, and whether delivered
/// packets must still verify their checksums (false only for corruption,
/// which mangles payload bytes the baseline would deliver mangled too).
fn scenarios() -> Vec<(&'static str, AdversityProfile, bool)> {
    let base = AdversityProfile { seed: SCENARIO_SEED, ..Default::default() };
    vec![
        ("loss", AdversityProfile { from_nf: LegProfile::loss(0.25), ..base.clone() }, true),
        (
            "reorder",
            AdversityProfile {
                from_nf: LegProfile { reorder: 0.5, max_displacement: 40, ..Default::default() },
                ..base.clone()
            },
            true,
        ),
        (
            "dup",
            AdversityProfile {
                from_nf: LegProfile { duplicate: 0.3, ..Default::default() },
                ..base.clone()
            },
            true,
        ),
        (
            "truncate",
            AdversityProfile {
                from_nf: LegProfile { truncate: 0.3, ..Default::default() },
                ..base.clone()
            },
            true,
        ),
        (
            "blackout",
            AdversityProfile {
                from_nf: LegProfile {
                    blackouts: vec![SeqWindow { from: 60, to: 140 }],
                    ..Default::default()
                },
                ..base.clone()
            },
            true,
        ),
        (
            "combined",
            AdversityProfile {
                to_nf: LegProfile::loss(0.05),
                from_nf: LegProfile {
                    drop: 0.15,
                    duplicate: 0.15,
                    truncate: 0.15,
                    reorder: 0.3,
                    max_displacement: 24,
                    ..Default::default()
                },
                ..base.clone()
            },
            true,
        ),
        (
            "corrupt",
            AdversityProfile { from_nf: LegProfile { corrupt: 0.4, ..Default::default() }, ..base },
            false,
        ),
    ]
}

/// Canonical delivered *set*: reordering legitimately permutes arrival
/// order, so paths are compared on sorted (seq, bytes) pairs.
fn canonical(outs: Vec<SwitchOutput>) -> Vec<(u64, Vec<u8>)> {
    let mut set: Vec<(u64, Vec<u8>)> = outs.into_iter().map(|o| (o.seq, o.bytes)).collect();
    set.sort();
    set
}

struct PathResult {
    delivered: Vec<(u64, Vec<u8>)>,
    counters: CounterSnapshot,
    stats: SwitchStats,
    occupancy: usize,
    tally: FaultTally,
}

fn scalar_run(waves: &[&[BatchPacket]], adv: &AdversityProfile) -> PathResult {
    let (mut sw, control) = TB.build_scalar();
    let mut tally = FaultTally::default();
    let mut delivered = Vec::new();
    for wave in waves {
        delivered.extend(TB.scalar_roundtrip_two_phase_adverse(&mut sw, wave, adv, &mut tally));
    }
    PathResult {
        delivered: canonical(delivered),
        counters: control.counters(&sw),
        stats: sw.stats(),
        occupancy: control.occupancy(&sw),
        tally,
    }
}

fn engine_run(waves: &[&[BatchPacket]], adv: &AdversityProfile, workers: usize) -> PathResult {
    let mut engine = TB.build_engine(EngineConfig { workers, batch: 32, ring_depth: 4 }).unwrap();
    let mut tally = FaultTally::default();
    let mut delivered = Vec::new();
    for wave in waves {
        let to_servers = engine.process(wave.to_vec());
        let outs = to_servers.to_seq_sorted().into_iter().map(BatchPacket::from).collect();
        let back = adverse_return_wave(adv, outs, TB.sink_mac(), &mut tally);
        delivered.extend(engine.process(back).to_seq_sorted());
    }
    PathResult {
        delivered: canonical(delivered),
        counters: engine.counters(),
        stats: engine.switch_stats(),
        occupancy: engine.occupancy(),
        tally,
    }
}

fn run_matrix(mixed: bool) {
    let inputs = if mixed {
        TB.counted_mixed_wave(WAVE_SEED, 2 * WAVE_PACKETS)
    } else {
        TB.counted_enterprise_wave(WAVE_SEED, 2 * WAVE_PACKETS)
    };
    let waves = [&inputs[..WAVE_PACKETS], &inputs[WAVE_PACKETS..]];

    for (name, adv, check_checksums) in scenarios() {
        let scalar = scalar_run(&waves, &adv);
        assert!(scalar.counters.splits > 0, "{name}: workload must park");

        // The conformance oracle on the scalar reference.
        let mut report = oracle::check_counters(&scalar.counters, scalar.occupancy);
        if check_checksums {
            report
                .merge(oracle::check_delivered(scalar.delivered.iter().map(|(_, b)| b.as_slice())));
        }
        assert!(report.ok(), "{name} (mixed={mixed}): {:?}", report.violations());

        // Scenario-specific signals: the adversity must actually bite.
        match name {
            "loss" | "blackout" | "combined" => {
                assert!(scalar.tally.lost() > 0, "{name}: {:?}", scalar.tally);
                assert!(
                    scalar.counters.evictions > 0,
                    "{name}: orphaned slots must be aged out: {:?}",
                    scalar.counters
                );
            }
            "dup" => {
                assert!(scalar.tally.duplicated > 0, "{name}: {:?}", scalar.tally);
                assert!(scalar.counters.dup_merge > 0, "{name}: {:?}", scalar.counters);
            }
            "truncate" => {
                assert!(scalar.tally.truncated > 0, "{name}: {:?}", scalar.tally);
                assert!(scalar.stats.parse_errors > 0, "{name}: {:?}", scalar.stats);
            }
            "reorder" => {
                assert!(scalar.tally.displaced > 0, "{name}: {:?}", scalar.tally);
                assert_eq!(scalar.delivered.len(), inputs.len(), "reorder loses nothing");
            }
            "corrupt" => {
                assert!(scalar.tally.corrupted > 0, "{name}: {:?}", scalar.tally);
            }
            _ => unreachable!(),
        }

        // Scalar vs 2- and 4-shard engine under the identical scenario.
        for workers in [2usize, 4] {
            let engine = engine_run(&waves, &adv, workers);
            let ctx = format!("{name} (mixed={mixed}, workers={workers})");
            assert_eq!(engine.tally, scalar.tally, "{ctx}: fault tallies diverged");
            assert_eq!(engine.counters, scalar.counters, "{ctx}: counters diverged");
            assert_eq!(engine.stats, scalar.stats, "{ctx}: switch stats diverged");
            assert_eq!(engine.occupancy, scalar.occupancy, "{ctx}: occupancy diverged");
            assert_eq!(
                engine.delivered.len(),
                scalar.delivered.len(),
                "{ctx}: delivered count diverged"
            );
            for (e, s) in engine.delivered.iter().zip(&scalar.delivered) {
                assert_eq!(e, s, "{ctx}: delivered byte set diverged");
            }
            oracle::check_counters(&engine.counters, engine.occupancy).assert_ok();
        }
    }
}

#[test]
fn matrix_holds_on_udp_only_waves() {
    run_matrix(false);
}

#[test]
fn matrix_holds_on_mixed_tcp_udp_waves() {
    run_matrix(true);
}
