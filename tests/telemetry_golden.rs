//! Golden-snapshot tests for the Prometheus telemetry exposition.
//!
//! Every quantity the harness exports is computed from simulation state
//! (sim-time latency, seeded generators), so the same [`TestbedConfig`]
//! must render byte-identical text — the property that makes a committed
//! `.prom` artifact diffable across CI runs. The remaining tests pin the
//! exposition-format conventions: `# HELP`/`# TYPE` comments only,
//! snake-case `pp_`-prefixed families, counters ending in `_total`, and
//! every PayloadPark counter present as exactly one family.

use payloadpark::counters::COUNTER_NAMES;
use pp_harness::telemetry::render_report;
use pp_harness::testbed::{run, DeployMode, ParkParams, RunReport, TestbedConfig};
use pp_netsim::time::SimDuration;
use pp_trafficgen::gen::{SizeModel, TrafficMix};

fn seeded_report() -> RunReport {
    run(&TestbedConfig {
        rate_gbps: 3.0,
        sizes: SizeModel::Fixed(512),
        mix: TrafficMix::UdpOnly,
        duration: SimDuration::from_millis(2),
        flows: 24,
        seed: 11,
        mode: DeployMode::PayloadPark(ParkParams::default()),
        ..Default::default()
    })
}

fn rendered() -> String {
    render_report(&seeded_report(), &[("path", "des")])
}

#[test]
fn seeded_run_renders_byte_identically() {
    let first = rendered();
    let second = rendered();
    assert_eq!(first, second, "a seeded run must be a stable snapshot");
    // A snapshot of nothing would also be stable; make sure the run did work.
    assert!(first.contains("pp_splits_total"), "{first}");
}

#[test]
fn exposition_follows_prometheus_conventions() {
    let text = rendered();
    assert!(!text.is_empty());
    for line in text.lines() {
        if let Some(comment) = line.strip_prefix('#') {
            assert!(
                comment.starts_with(" HELP ") || comment.starts_with(" TYPE "),
                "unknown comment form: {line}"
            );
            continue;
        }
        // Sample line: `name{labels} value` or `name value`.
        let name_end = line.find(['{', ' ']).unwrap_or_else(|| panic!("malformed line {line:?}"));
        let name = &line[..name_end];
        assert!(name.starts_with("pp_"), "family {name:?} lacks the pp_ namespace");
        assert!(
            name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "family {name:?} is not snake_case"
        );
        let value = line.rsplit(' ').next().unwrap();
        value.parse::<f64>().unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
    }
    // Prometheus naming: every counter family carries the _total suffix.
    for line in text.lines() {
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut parts = decl.split(' ');
            let (name, kind) = (parts.next().unwrap(), parts.next().unwrap());
            if kind == "counter" {
                assert!(name.ends_with("_total"), "counter {name:?} lacks _total");
            }
        }
    }
}

#[test]
fn every_payloadpark_counter_family_appears_exactly_once() {
    let text = rendered();
    for name in COUNTER_NAMES {
        let family = format!("# TYPE pp_{name}_total counter");
        assert_eq!(
            text.matches(family.as_str()).count(),
            1,
            "expected exactly one {family:?} in:\n{text}"
        );
    }
}

#[test]
fn latency_quantiles_are_labelled_and_ordered() {
    let report = seeded_report();
    let text = render_report(&report, &[]);
    let mut previous = 0.0f64;
    for q in ["0.5", "0.9", "0.99", "0.999"] {
        let needle = format!("pp_latency_us{{quantile=\"{q}\"}} ");
        let line = text
            .lines()
            .find(|l| l.starts_with(needle.as_str()))
            .unwrap_or_else(|| panic!("missing quantile {q} in:\n{text}"));
        let value: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(value >= previous, "quantiles must be monotone: {text}");
        previous = value;
    }
    assert!(previous <= report.latency.max_us() + 1e-9, "p99.9 must not exceed the max");
}
