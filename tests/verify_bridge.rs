//! Proptest bridge between the static verifier and the executor.
//!
//! `pp_verify` reasons about declared [`MatSummary`] dataflow, never about
//! the closures that actually run. This suite closes that gap from both
//! sides on randomly generated small programs whose closures and summaries
//! are derived from the *same* spec (so they agree by construction):
//!
//! - **clean ⇒ equivalent**: when the analyzer reports no error-severity
//!   findings, scalar [`Pipeline::execute`] and [`Pipeline::execute_batch`]
//!   must produce byte-identical PHVs, counters and register state;
//! - **dead ⇒ never fires**: any table the analyzer calls unreachable
//!   (PV201/PV202) must record zero gateway hits on a workload covering
//!   every port the program matches on;
//! - **flagged ⇒ rejected**: programs with a cross-stage stateful binding
//!   are flagged by pass 3 (PV302) *and* refused by
//!   [`pp_rmt::PipelineBuilder`] before anything executes;
//! - negative generators for each of the four passes: randomly placed
//!   invalid-header reads (PV101), shadowed tables (PV202), cross-stage
//!   register bindings (PV302) and overlapping shard slices (PV401) must
//!   always be caught.

use pp_rmt::summary::{MatSummary, Req, Slot};
use pp_rmt::{ChipProfile, Mat, ParserConfig, Phv, PortId, ProgramError, RegisterSpec};
use pp_verify::ir::{MatIr, ParserIr, ProgramIr, RegIr};
use pp_verify::shard::{check_shards, ShardIr, SliceClaim, WorkerIr};
use pp_verify::{check, check_ir, Code, Severity};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Ports the random programs match on (and the workload covers).
const PORTS: u16 = 4;
/// Distinct per-MAT counter names (the builder wants `&'static str`).
const COUNTER_NAMES: [&str; 8] = ["c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One random table: a port/flag gateway over a flag-set, meta-write and
/// register-bump action. Closures and summary are both derived from this.
#[derive(Debug, Clone, Copy)]
struct MatSpec {
    stage: usize,
    /// `Some(p)`: gateway requires `ingress_port == p`.
    port_gate: Option<u16>,
    /// `Some(f)`: gateway requires `meta[f] == 1` (the guard-flag idiom).
    flag_req: Option<u8>,
    /// `Some(f)`: action sets `meta[f] = 1`.
    set_flag: Option<u8>,
    /// `Some(w)`: action writes a spec-derived constant into `meta[w]`.
    write: Option<u8>,
    /// Bind a 4-cell register at this stage; the action bumps the cell
    /// selected by `ingress_port % 4`.
    stateful: bool,
}

fn specs_from_seed(seed: u64, n_mats: usize) -> Vec<MatSpec> {
    let mut s = seed;
    (0..n_mats)
        .map(|_| {
            let r = splitmix(&mut s);
            MatSpec {
                stage: (r % 3) as usize,
                port_gate: (r >> 2)
                    .is_multiple_of(2)
                    .then_some(((r >> 8) % u64::from(PORTS)) as u16),
                flag_req: (r >> 16).is_multiple_of(4).then_some(((r >> 18) % 4) as u8),
                set_flag: (r >> 24).is_multiple_of(3).then_some(((r >> 26) % 4) as u8),
                write: (r >> 32).is_multiple_of(2).then_some((4 + (r >> 34) % 4) as u8),
                stateful: (r >> 40).is_multiple_of(5),
            }
        })
        .collect()
}

fn summary_of(spec: &MatSpec) -> MatSummary {
    let mut s = match spec.port_gate {
        Some(p) => MatSummary::on_ports([p]),
        None => MatSummary::any_port(),
    };
    if let Some(f) = spec.flag_req {
        s = s.require(Req::MetaFlag(f));
    }
    if let Some(f) = spec.set_flag {
        s = s.sets_flag(f);
    }
    if let Some(w) = spec.write {
        s = s.writes(Slot::Meta(w));
    }
    s
}

/// Builds the runnable pipeline for `specs`. MAT `i`'s action also bumps
/// counter `i`, so gateway-hit counts are visible in the counter snapshot.
fn build(specs: &[MatSpec]) -> Result<pp_rmt::Pipeline, ProgramError> {
    let mut b = pp_rmt::Pipeline::builder(ChipProfile::default());
    for (i, spec) in specs.iter().enumerate() {
        let ctr = b.counter(COUNTER_NAMES[i]);
        let write_value = 0x100 + i as u32;
        let (port_gate, flag_req, set_flag, write) =
            (spec.port_gate, spec.flag_req, spec.set_flag, spec.write);
        let mut mat = Mat::builder(format!("mat{i}"))
            .gateway(move |p| {
                port_gate.is_none_or(|g| p.ingress_port == PortId(g))
                    && flag_req.is_none_or(|f| p.meta[f as usize] == 1)
            })
            .action(move |ctx| {
                if let Some(f) = set_flag {
                    ctx.phv.meta[f as usize] = 1;
                }
                if let Some(w) = write {
                    ctx.phv.meta[w as usize] = write_value;
                }
                if let Some(cell) = ctx.cell.as_deref_mut() {
                    let v = pp_rmt::register::cell::read_u32(cell);
                    pp_rmt::register::cell::write_u32(cell, v.wrapping_add(1));
                }
                ctx.counters[ctr] += 1;
            })
            .summary(summary_of(spec));
        if spec.stateful {
            let reg = b.register(RegisterSpec {
                name: format!("reg{i}"),
                stage: spec.stage,
                cell_bytes: 4,
                cells: 4,
            });
            mat = mat.stateful(reg, |p| Some(p.ingress_port.0 as usize % 4));
        }
        b.place(spec.stage, mat.build());
    }
    b.build()
}

/// The workload: several passes over every port the programs match on.
fn workload() -> Vec<Phv> {
    (0..PORTS * 5).map(|i| Phv { ingress_port: PortId(i % PORTS), ..Phv::default() }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// clean ⇒ equivalent, and dead ⇒ never fires, on random programs.
    #[test]
    fn analyzer_clean_programs_execute_identically(seed in any::<u64>(), n_mats in 1usize..7) {
        let specs = specs_from_seed(seed, n_mats);
        let parser = ParserConfig::l2_only();
        let mut scalar = build(&specs).expect("in-range spec builds");
        let diags = check(&scalar, &parser);
        let errors: Vec<_> =
            diags.iter().filter(|d| d.severity == Severity::Error).collect();
        prop_assert!(
            errors.is_empty(),
            "meta-only programs must be error-free: {errors:?}"
        );

        // Scalar reference run.
        let mut phvs_a = workload();
        for phv in phvs_a.iter_mut() {
            scalar.execute(phv);
        }

        // Batched run over a fresh pipeline built from the same specs.
        let mut batched = build(&specs).expect("same spec builds again");
        let mut phvs_b = workload();
        batched.execute_batch(&mut phvs_b);

        prop_assert_eq!(&phvs_a, &phvs_b, "PHVs diverged");
        prop_assert_eq!(scalar.counters(), batched.counters(), "counters diverged");
        prop_assert_eq!(scalar.packets_processed(), batched.packets_processed());
        for (r, spec) in scalar.registers().specs().iter().enumerate() {
            for cell in 0..spec.cells {
                prop_assert_eq!(
                    scalar.registers().cell(pp_rmt::RegisterId(r), cell),
                    batched.registers().cell(pp_rmt::RegisterId(r), cell),
                    "register {} cell {} diverged", spec.name, cell
                );
            }
        }

        // Soundness of the reachability pass: every table the analyzer
        // declared dead or shadowed must indeed never have fired.
        for d in &diags {
            if matches!(d.code, Code::PV201 | Code::PV202) {
                let name = d.mat.as_deref().unwrap();
                let hits: u64 = scalar
                    .stages()
                    .iter()
                    .flat_map(|s| s.mats())
                    .filter(|m| m.name() == name)
                    .map(|m| m.hits())
                    .sum();
                prop_assert_eq!(
                    hits, 0,
                    "analyzer called {} unreachable but it fired", name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Negative generators: each pass must catch its randomly-placed defect.
// ---------------------------------------------------------------------

/// Hand-built program IR over one pp-parsing port (for defects the real
/// builder would refuse to construct, or that need parser control).
fn ir_on_pp_port(port: u16, stages: Vec<Vec<MatIr>>, registers: Vec<RegIr>) -> ProgramIr {
    ProgramIr {
        name: "bridge".into(),
        stages,
        registers,
        parser: ParserIr {
            pp_ports: [port].into_iter().collect(),
            block_ports: [port].into_iter().collect(),
            block_capacity: 2,
        },
        entry: BTreeMap::new(),
    }
}

fn plain_mat(name: &str, stage: usize, summary: MatSummary) -> MatIr {
    MatIr { name: name.into(), stage, summary: Some(summary), stateful: None }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Pass 1: a shim read on a port whose parser never produces a shim is
    /// a PV101 error wherever the table lands.
    #[test]
    fn pass1_catches_invalid_header_reads(pp_port in 0u16..8, read_port in 8u16..16,
                                          stage in 0usize..3) {
        let bad = plain_mat(
            "bad_read",
            stage,
            MatSummary::on_ports([read_port]).reads(Slot::Pp),
        );
        let mut stages = vec![Vec::new(); stage + 1];
        stages[stage].push(bad);
        let diags = check_ir(&ir_on_pp_port(pp_port, stages, vec![]));
        let d = diags.iter().find(|d| d.code == Code::PV101).expect("PV101");
        prop_assert_eq!(d.severity, Severity::Error);
        prop_assert_eq!(d.mat.as_deref(), Some("bad_read"));
    }

    /// Pass 2: an unconditional upstream strip shadows any later table that
    /// requires the shim — PV202 names both parties, at any stage gap.
    #[test]
    fn pass2_catches_shadowed_tables(port in 0u16..8, gap in 1usize..4) {
        let strip = plain_mat(
            "stripper",
            0,
            MatSummary::on_ports([port])
                .require(Req::Valid(Slot::Pp))
                .sets_invalid(Slot::Pp),
        );
        let shadowed = plain_mat(
            "shadowed",
            gap,
            MatSummary::on_ports([port]).require(Req::Valid(Slot::Pp)),
        );
        let mut stages = vec![Vec::new(); gap + 1];
        stages[0].push(strip);
        stages[gap].push(shadowed);
        let diags = check_ir(&ir_on_pp_port(port, stages, vec![]));
        let d = diags.iter().find(|d| d.code == Code::PV202).expect("PV202");
        prop_assert_eq!(d.severity, Severity::Error);
        prop_assert_eq!(d.mat.as_deref(), Some("shadowed"));
        prop_assert!(d.message.contains("stripper"), "culprit named: {}", d.message);
    }

    /// Pass 3: a stateful binding whose register lives in another stage is
    /// flagged (PV302) *and* the builder refuses the program outright.
    #[test]
    fn pass3_flags_what_the_builder_rejects(mat_stage in 0usize..3, offset in 1usize..3) {
        let reg_stage = mat_stage + offset;

        // The analyzer view.
        let rmw = MatIr {
            name: "rmw".into(),
            stage: mat_stage,
            summary: Some(MatSummary::any_port()),
            stateful: Some(0),
        };
        let mut stages = vec![Vec::new(); mat_stage + 1];
        stages[mat_stage].push(rmw);
        let ir = ir_on_pp_port(
            0,
            stages,
            vec![RegIr { name: "bank".into(), stage: reg_stage }],
        );
        prop_assert!(
            check_ir(&ir).iter().any(|d| d.code == Code::PV302
                && d.severity == Severity::Error),
            "PV302 expected"
        );

        // The executor view: the same shape never gets to run.
        let mut b = pp_rmt::Pipeline::builder(ChipProfile::default());
        let reg = b.register(RegisterSpec {
            name: "bank".into(),
            stage: reg_stage,
            cell_bytes: 4,
            cells: 4,
        });
        b.place(
            mat_stage,
            Mat::builder("rmw").stateful(reg, |_| Some(0)).build(),
        );
        match b.build() {
            Err(ProgramError::CrossStageStatefulBinding { mat, mat_stage: m, register_stage: r }) => {
                prop_assert_eq!(mat.as_str(), "rmw");
                prop_assert_eq!(m, mat_stage);
                prop_assert_eq!(r, reg_stage);
            }
            other => prop_assert!(false, "builder accepted a cross-stage binding: {other:?}"),
        }
    }

    /// Pass 4: any overlap between two workers' slice ranges is a PV401
    /// error, and shifting the second range past the first clears it.
    #[test]
    fn pass4_catches_overlapping_shards(len in 1usize..64, overlap in 1usize..32) {
        let overlap = overlap.min(len);
        let shard = |second_start: usize| ShardIr {
            total_slots: len + second_start.max(len),
            parent_ports: [0u16, 1].into_iter().collect(),
            parent_has_annex: false,
            workers: vec![
                WorkerIr {
                    name: "w0".into(),
                    ports: [0u16].into_iter().collect(),
                    claims: vec![SliceClaim { name: "s0".into(), slots: 0..len }],
                },
                WorkerIr {
                    name: "w1".into(),
                    ports: [1u16].into_iter().collect(),
                    claims: vec![SliceClaim {
                        name: "s1".into(),
                        slots: second_start..second_start + len,
                    }],
                },
            ],
            port_map: [(0u16, 0usize), (1u16, 1usize)].into_iter().collect(),
        };

        let diags = check_shards(&shard(len - overlap));
        prop_assert!(
            diags.iter().any(|d| d.code == Code::PV401 && d.severity == Severity::Error),
            "overlap of {overlap} slots missed: {diags:?}"
        );
        let disjoint = check_shards(&shard(len));
        prop_assert!(
            !disjoint.iter().any(|d| d.code == Code::PV401),
            "false positive on disjoint ranges: {disjoint:?}"
        );
    }
}
