//! Workspace smoke test: one UDP packet through the full
//! Split → NF → Merge lifecycle, asserting byte-for-byte restoration.
//!
//! This is the cheapest end-to-end check that the workspace wiring is
//! sound: it touches `pp_packet` (builder/parser), `pp_rmt` (the switch
//! model), `payloadpark` (the Split/Merge program and control plane) and
//! `pp_nf` (a real NF between the two passes).

use payloadpark::program::build_switch;
use payloadpark::{ParkConfig, PipeControl};
use pp_nf::chain::Nf;
use pp_nf::nfs::MacSwap;
use pp_packet::builder::UdpPacketBuilder;
use pp_packet::{MacAddr, Packet};
use pp_rmt::chip::ChipProfile;
use pp_rmt::PortId;

#[test]
fn one_packet_split_nf_merge_is_identity() {
    // PayloadPark on pipe 0: generator on ports 0-1, NF server on port 2,
    // sink on port 3, 4096 lookup-table slots.
    let cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 4096);
    let (mut switch, handles) = build_switch(&cfg).expect("config fits the chip");
    let control = PipeControl::new(handles[0].clone());

    let server_mac = MacAddr::from_index(100);
    let sink_mac = MacAddr::from_index(200);
    switch.l2_add(server_mac, PortId(2));
    switch.l2_add(sink_mac, PortId(3));

    // MacSwap is symmetric in every header byte it touches, so after the NF
    // swaps src/dst we only need to re-point the destination at the sink;
    // the payload must come back untouched regardless.
    let pkt = UdpPacketBuilder::new()
        .src_mac(sink_mac)
        .dst_mac(server_mac)
        .total_size(512, 7)
        .build();
    let original = pkt.bytes().to_vec();

    // Split: 160 payload bytes parked, 7-byte tag appended to the header.
    let out = switch.process(pkt.bytes(), PortId(0), 0);
    assert_eq!(out.len(), 1, "split must forward exactly one packet");
    assert_eq!(out[0].port, PortId(2), "header goes to the NF server");
    assert_eq!(out[0].bytes.len(), 512 - 160 + 7);

    // NF: a real network function processes the truncated packet.
    let mut at_server = Packet::new(out[0].bytes.clone());
    let mut nf = MacSwap::new();
    nf.process(&mut at_server);
    assert_eq!(nf.swapped(), 1);
    assert_eq!(&at_server.bytes()[0..6], &sink_mac.0, "swap routed reply to sink");

    // Merge: the switch restores the parked payload on the way back.
    let back = switch.process(at_server.bytes(), PortId(2), 0);
    assert_eq!(back.len(), 1, "merge must forward exactly one packet");
    assert_eq!(back[0].port, PortId(3), "restored packet reaches the sink");
    assert_eq!(back[0].bytes.len(), 512);

    // Byte-for-byte equality modulo the NF's own (intended) MAC swap:
    // undo the swap and the whole packet must equal what was sent.
    let mut restored = back[0].bytes.clone();
    fn swap_macs(bytes: &mut [u8]) {
        let (dst, rest) = bytes.split_at_mut(6);
        dst.swap_with_slice(&mut rest[..6]);
    }
    swap_macs(&mut restored);
    assert_eq!(restored, original, "Split ∘ NF ∘ Merge must be the identity");

    // The control plane agrees: one split, one merge, nothing evicted.
    let c = control.counters(&switch);
    assert_eq!(c.splits, 1);
    assert_eq!(c.merges, 1);
    assert!(c.functionally_equivalent());
}
