//! Workspace smoke test: one UDP packet through the full
//! Split → NF → Merge lifecycle, asserting byte-for-byte restoration.
//!
//! This is the cheapest end-to-end check that the workspace wiring is
//! sound: it touches `pp_packet` (builder/parser), `pp_rmt` (the switch
//! model), `payloadpark` (the Split/Merge program and control plane) and
//! `pp_nf` (a real NF between the two passes).

use payloadpark::program::build_switch;
use payloadpark::{ParkConfig, PipeControl};
use pp_nf::chain::Nf;
use pp_nf::nfs::MacSwap;
use pp_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};
use pp_packet::{MacAddr, Packet};
use pp_rmt::chip::ChipProfile;
use pp_rmt::switch::SwitchModel;
use pp_rmt::PortId;

#[test]
fn one_packet_split_nf_merge_is_identity() {
    // PayloadPark on pipe 0: generator on ports 0-1, NF server on port 2,
    // sink on port 3, 4096 lookup-table slots.
    let cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 4096);
    let (mut switch, handles) = build_switch(&cfg).expect("config fits the chip");
    let control = PipeControl::new(handles[0].clone());

    let server_mac = MacAddr::from_index(100);
    let sink_mac = MacAddr::from_index(200);
    switch.l2_add(server_mac, PortId(2));
    switch.l2_add(sink_mac, PortId(3));

    // MacSwap is symmetric in every header byte it touches, so after the NF
    // swaps src/dst we only need to re-point the destination at the sink;
    // the payload must come back untouched regardless.
    let pkt =
        UdpPacketBuilder::new().src_mac(sink_mac).dst_mac(server_mac).total_size(512, 7).build();
    let original = pkt.bytes().to_vec();

    // Split: 160 payload bytes parked, 7-byte tag appended to the header.
    let out = switch.process(pkt.bytes(), PortId(0), 0);
    assert_eq!(out.len(), 1, "split must forward exactly one packet");
    assert_eq!(out[0].port, PortId(2), "header goes to the NF server");
    assert_eq!(out[0].bytes.len(), 512 - 160 + 7);

    // NF: a real network function processes the truncated packet.
    let mut at_server = Packet::new(out[0].bytes.clone());
    let mut nf = MacSwap::new();
    nf.process(&mut at_server);
    assert_eq!(nf.swapped(), 1);
    assert_eq!(&at_server.bytes()[0..6], &sink_mac.0, "swap routed reply to sink");

    // Merge: the switch restores the parked payload on the way back.
    let back = switch.process(at_server.bytes(), PortId(2), 0);
    assert_eq!(back.len(), 1, "merge must forward exactly one packet");
    assert_eq!(back[0].port, PortId(3), "restored packet reaches the sink");
    assert_eq!(back[0].bytes.len(), 512);

    // Byte-for-byte equality modulo the NF's own (intended) MAC swap:
    // undo the swap and the whole packet must equal what was sent.
    let mut restored = back[0].bytes.clone();
    fn swap_macs(bytes: &mut [u8]) {
        let (dst, rest) = bytes.split_at_mut(6);
        dst.swap_with_slice(&mut rest[..6]);
    }
    swap_macs(&mut restored);
    assert_eq!(restored, original, "Split ∘ NF ∘ Merge must be the identity");

    // The control plane agrees: one split, one merge, nothing evicted.
    let c = control.counters(&switch);
    assert_eq!(c.splits, 1);
    assert_eq!(c.merges, 1);
    assert!(c.functionally_equivalent());
}

/// Shared rig for the boundary tests below.
fn boundary_testbed() -> (SwitchModel, PipeControl, MacAddr, MacAddr) {
    let cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 4096);
    let (mut switch, handles) = build_switch(&cfg).expect("config fits the chip");
    let server_mac = MacAddr::from_index(100);
    let sink_mac = MacAddr::from_index(200);
    switch.l2_add(server_mac, PortId(2));
    switch.l2_add(sink_mac, PortId(3));
    (switch, PipeControl::new(handles[0].clone()), server_mac, sink_mac)
}

/// Split → (readdress to sink) → Merge for one packet; returns the bytes
/// that reach the sink.
fn roundtrip(switch: &mut SwitchModel, bytes: &[u8], sink_mac: MacAddr) -> Vec<u8> {
    let out = switch.process(bytes, PortId(0), 0);
    assert_eq!(out.len(), 1, "forward leg must emit exactly one packet");
    let mut at_server = out[0].bytes.clone();
    at_server[0..6].copy_from_slice(&sink_mac.0);
    let back = switch.process(&at_server, PortId(2), 0);
    assert_eq!(back.len(), 1, "merge leg must emit exactly one packet");
    back[0].bytes.clone()
}

/// Undoes the sink readdressing so the round trip can be compared against
/// the original bytes.
fn with_server_dst(mut bytes: Vec<u8>, server_mac: MacAddr) -> Vec<u8> {
    bytes[0..6].copy_from_slice(&server_mac.0);
    bytes
}

/// Boundary: a zero-length payload (42-byte packet) takes the disabled
/// small-payload path and survives byte-identically.
#[test]
fn zero_length_payload_takes_the_disabled_path() {
    let (mut switch, control, server_mac, sink_mac) = boundary_testbed();
    let pkt = UdpPacketBuilder::new().dst_mac(server_mac).total_size(42, 1).build();
    let restored = roundtrip(&mut switch, pkt.bytes(), sink_mac);
    assert_eq!(with_server_dst(restored, server_mac), pkt.bytes());
    let c = control.counters(&switch);
    assert_eq!(c.splits, 0);
    assert_eq!(c.disabled_small_payload, 1);
    assert_eq!(c.enb0_from_server, 1, "the disabled shim came back with ENB=0");
    assert!(c.functionally_equivalent());
}

/// Boundary: a payload exactly at the 160-byte minimum-park size splits
/// (leaving a header-only packet on the wire) and merges byte-identically.
#[test]
fn payload_exactly_at_minimum_park_size_splits() {
    let (mut switch, control, server_mac, sink_mac) = boundary_testbed();
    for (total, bytes) in [
        (
            42 + 160,
            UdpPacketBuilder::new()
                .dst_mac(server_mac)
                .total_size(42 + 160, 2)
                .build()
                .into_bytes(),
        ),
        (
            54 + 160,
            TcpPacketBuilder::new()
                .dst_mac(server_mac)
                .total_size(54 + 160, 2)
                .build()
                .into_bytes(),
        ),
    ] {
        let out = switch.process(&bytes, PortId(0), 0);
        // The whole payload is parked: headers + 7-byte shim remain.
        assert_eq!(out[0].bytes.len(), total - 160 + 7);
        let mut at_server = out[0].bytes.clone();
        at_server[0..6].copy_from_slice(&sink_mac.0);
        let back = switch.process(&at_server, PortId(2), 0);
        assert_eq!(with_server_dst(back[0].bytes.clone(), server_mac), bytes);
    }
    // One byte below the minimum takes the disabled path instead.
    let under = UdpPacketBuilder::new().dst_mac(server_mac).total_size(42 + 159, 3).build();
    let restored = roundtrip(&mut switch, under.bytes(), sink_mac);
    assert_eq!(with_server_dst(restored, server_mac), under.bytes());
    let c = control.counters(&switch);
    assert_eq!(c.splits, 2, "UDP and TCP at exactly the minimum both split");
    assert_eq!(c.merges, 2);
    assert_eq!(c.disabled_small_payload, 1);
    assert!(c.functionally_equivalent());
}

/// Boundary: a Merge-port arrival with ENB=0 strips the shim, restores the
/// lengths, and counts on `enb0_from_server` — it must not touch the
/// payload table.
#[test]
fn merge_with_enb0_strips_and_counts() {
    let (mut switch, control, server_mac, sink_mac) = boundary_testbed();
    // A small packet gets the disabled (ENB=0) shim on the way out.
    let pkt = UdpPacketBuilder::new().dst_mac(server_mac).total_size(100, 4).build();
    let out = switch.process(pkt.bytes(), PortId(0), 0);
    assert_eq!(out[0].bytes.len(), 107, "disabled shim adds 7 bytes");
    // The shim's ENB bit (top bit of the first shim byte at offset 42).
    assert_eq!(out[0].bytes[42] & 0x80, 0, "ENB must be 0");

    let mut at_server = out[0].bytes.clone();
    at_server[0..6].copy_from_slice(&sink_mac.0);
    let back = switch.process(&at_server, PortId(2), 0);
    assert_eq!(back[0].bytes.len(), 100, "shim stripped, lengths restored");
    assert_eq!(with_server_dst(back[0].bytes.clone(), server_mac), pkt.bytes());
    let c = control.counters(&switch);
    assert_eq!(c.enb0_from_server, 1);
    assert_eq!(c.merges, 0, "an ENB=0 arrival is not a Merge");
    assert_eq!(control.occupancy(&switch), 0, "the payload table was never touched");
    assert!(c.functionally_equivalent());
}
