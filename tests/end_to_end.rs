//! Cross-crate integration tests: the full testbed exercising every
//! subsystem together, asserting the paper's qualitative results at
//! test-scale effort.

use pp_harness::testbed::{run, ChainSpec, DeployMode, FrameworkKind, ParkParams, TestbedConfig};
use pp_netsim::time::SimDuration;
use pp_nf::server::ServerProfile;
use pp_trafficgen::gen::{SizeModel, TrafficMix};

fn quiet_server() -> ServerProfile {
    ServerProfile { jitter_frac: 0.0, modulation_amplitude: 0.0, ..Default::default() }
}

fn cfg(rate: f64, size: SizeModel, chain: ChainSpec, mode: DeployMode) -> TestbedConfig {
    TestbedConfig {
        nic_gbps: 40.0,
        rate_gbps: rate,
        sizes: size,
        mix: pp_trafficgen::gen::TrafficMix::UdpOnly,
        duration: SimDuration::from_millis(4),
        chain,
        framework: FrameworkKind::OpenNetVm,
        server: quiet_server(),
        flows: 64,
        seed: 21,
        mode,
        ..Default::default()
    }
}

/// The per-byte server cost means PayloadPark sustains a higher packet
/// rate once the baseline is compute-bound — the Fig. 8 mechanism.
#[test]
fn park_extends_the_compute_bound_peak() {
    let chain = ChainSpec::FwNat { fw_rules: 1 };
    // 22 Gbps of 512 B ≈ 5.4 Mpps: beyond both deployments' service rates
    // (baseline ≈4.2 Mpps, PayloadPark ≈5.1 Mpps), so each delivers its µ.
    let base = run(&cfg(22.0, SizeModel::Fixed(512), chain, DeployMode::Baseline));
    let park = run(&cfg(
        22.0,
        SizeModel::Fixed(512),
        chain,
        DeployMode::PayloadPark(ParkParams::default()),
    ));
    assert!(!base.healthy() || base.goodput_gbps < park.goodput_gbps);
    assert!(
        park.goodput_gbps > base.goodput_gbps * 1.05,
        "park {} base {}",
        park.goodput_gbps,
        base.goodput_gbps
    );
}

/// The relative gain shrinks as packets grow — "a larger goodput gain at
/// smaller packet sizes, because we truncate a larger proportion of each
/// packet" (Fig. 8, for sizes ≥ 384 B; the separate 256 B memory-pressure
/// effect is exercised by `premature_evictions_surface_as_unhealthy`).
#[test]
fn relative_gain_shrinks_with_packet_size() {
    let chain = ChainSpec::FwNat { fw_rules: 1 };
    let gain_at = |size: usize, rate: f64| {
        let base = run(&cfg(rate, SizeModel::Fixed(size), chain, DeployMode::Baseline));
        let park = run(&cfg(
            rate,
            SizeModel::Fixed(size),
            chain,
            DeployMode::PayloadPark(ParkParams::default()),
        ));
        (park.rate_mpps / base.rate_mpps).max(0.0)
    };
    // Past-saturation probes: the delivered-rate ratio approximates the
    // peak ratio.
    let g512 = gain_at(512, 24.0);
    let g1492 = gain_at(1492, 30.0);
    assert!(g512 > 1.10, "512B ratio {g512}");
    assert!(g1492 > 1.02, "1492B ratio {g1492}");
    assert!(g512 > g1492, "512B ratio {g512} should exceed 1492B ratio {g1492}");
}

/// PCIe savings grow as packets shrink (Fig. 9: up to 58 % at 256 B).
#[test]
fn pcie_savings_grow_for_small_packets() {
    let chain = ChainSpec::Firewall { rules: 1 };
    let saving_at = |size: usize| {
        let base = run(&cfg(4.0, SizeModel::Fixed(size), chain, DeployMode::Baseline));
        let park = run(&cfg(
            4.0,
            SizeModel::Fixed(size),
            chain,
            DeployMode::PayloadPark(ParkParams::default()),
        ));
        1.0 - park.pcie_gbps / base.pcie_gbps
    };
    let s256 = saving_at(256);
    let s1492 = saving_at(1492);
    assert!(s256 > 0.35, "256B saving {s256}");
    assert!(s1492 > 0.05, "1492B saving {s1492}");
    assert!(s256 > s1492 * 2.0, "saving must grow as packets shrink");
}

/// A starved lookup table makes PayloadPark fall back to baseline
/// behaviour rather than dropping traffic.
#[test]
fn tiny_table_degrades_gracefully() {
    let params = ParkParams {
        sram_fraction: 0.000_5, // ~11 slots, fewer than a burst in flight
        expiry: 10,
        ..Default::default()
    };
    let park =
        run(&cfg(2.0, SizeModel::Fixed(512), ChainSpec::MacSwap, DeployMode::PayloadPark(params)));
    assert!(park.healthy(), "{:?}", park.health);
    let c = park.counters.unwrap();
    assert!(c.disabled_occupied > 0, "must have hit the occupied path: {c:?}");
    assert!(c.functionally_equivalent(), "{c:?}");
}

/// An aggressive expiry threshold under overload produces premature
/// evictions, which the health criterion flags (the Fig. 14 mechanism).
#[test]
fn premature_evictions_surface_as_unhealthy() {
    let params = ParkParams {
        sram_fraction: 0.002, // ~190 slots
        expiry: 1,
        ..Default::default()
    };
    let mut config = cfg(
        30.0,
        SizeModel::Fixed(384),
        ChainSpec::FwNat { fw_rules: 1 },
        DeployMode::PayloadPark(params),
    );
    // A slow, bufferless-enough server so the split->merge delta exceeds
    // the tiny table's tolerance.
    config.server.modulation_amplitude = 0.05;
    config.server.modulation_period = SimDuration::from_millis(2);
    let r = run(&config);
    let c = r.counters.unwrap();
    assert!(c.premature_evictions > 0, "{c:?}");
    assert!(!r.healthy(), "premature evictions must fail health: {:?}", r.health);
}

/// The mixed TCP+UDP enterprise wave — the composition the paper's target
/// datacenters actually carry — runs through the full testbed with TCP
/// payloads parked: healthy, functionally equivalent, and with a goodput
/// gain over baseline once the server saturates (the Fig. 7/8-style
/// mechanism on the realistic mix).
#[test]
fn mixed_tcp_udp_wave_parks_and_gains_goodput() {
    let mut config = cfg(
        22.0,
        SizeModel::Fixed(512),
        ChainSpec::FwNat { fw_rules: 1 },
        DeployMode::PayloadPark(ParkParams::default()),
    );
    config.mix = TrafficMix::TcpUdp { tcp_fraction: 0.7 };
    let park = run(&config);
    config.mode = DeployMode::Baseline;
    let base = run(&config);

    let c = park.counters.unwrap();
    assert!(c.splits > 0, "TCP-dominated traffic must still park: {c:?}");
    assert!(c.merges > 0, "{c:?}");
    assert!(c.functionally_equivalent(), "{c:?}");
    assert!(
        park.goodput_gbps > base.goodput_gbps * 1.05,
        "park {} base {}",
        park.goodput_gbps,
        base.goodput_gbps
    );
}

/// The switch resource report stays within the paper's Table 1 envelope
/// for the standard deployment.
#[test]
fn resource_envelope_matches_table1() {
    use payloadpark::program::build_switch;
    use payloadpark::{ParkConfig, PipeControl};
    use pp_rmt::chip::ChipProfile;

    let mut cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 16);
    cfg.pipes[0].slices[0].slots = cfg.slots_for_sram_fraction(0.26);
    let (switch, handles) = build_switch(&cfg).unwrap();
    let report = PipeControl::new(handles[0].clone()).resource_report(&switch);
    assert!(report.sram_avg_pct() < 40.0);
    assert!(report.sram_peak_pct() < 50.0);
    assert!(report.tcam_pct() < 5.0);
    assert!(report.vliw_pct() < 20.0);
    assert!(report.phv_pct() < 60.0);
}
