//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! provides the subset of the 0.5 API the workspace's bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`Throughput`], [`Bencher::iter`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by a
//! simple median-of-samples wall-clock harness. It reports ns/iter (plus
//! derived throughput) to stdout; there is no statistical analysis, HTML
//! report or run-over-run comparison.
//!
//! Set `PP_BENCH_FAST=1` to clamp warm-up/measurement budgets to a few
//! milliseconds, which keeps `cargo bench` usable as a smoke test.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the median per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent, and use the
        // observed speed to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let budget_per_sample = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget_per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            samples.push(t.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn fast_mode() -> bool {
    std::env::var("PP_BENCH_FAST").map(|v| v != "0").unwrap_or(false)
}

#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            throughput: None,
        }
    }
}

impl Settings {
    fn effective(&self) -> (usize, Duration, Duration) {
        if fast_mode() {
            (
                self.sample_size.min(5),
                self.warm_up.min(Duration::from_millis(5)),
                self.measurement.min(Duration::from_millis(25)),
            )
        } else {
            (self.sample_size, self.warm_up, self.measurement)
        }
    }

    fn run<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        let (sample_size, warm_up, measurement) = self.effective();
        let mut b = Bencher { sample_size, warm_up, measurement, ns_per_iter: 0.0 };
        f(&mut b);
        let mut line = format!("bench {id:<44} {:>12.1} ns/iter", b.ns_per_iter);
        if b.ns_per_iter > 0.0 {
            match self.throughput {
                Some(Throughput::Bytes(n)) => {
                    let gbps = n as f64 * 8.0 / b.ns_per_iter;
                    line.push_str(&format!("  ({gbps:.2} Gbit/s)"));
                }
                Some(Throughput::Elements(n)) => {
                    let meps = n as f64 * 1e3 / b.ns_per_iter;
                    line.push_str(&format!("  ({meps:.2} Melem/s)"));
                }
                None => {}
            }
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _c: self, name: name.to_string(), settings: Settings::default() }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        Settings::default().run(id, f);
        self
    }
}

/// A group of benchmarks sharing throughput/measurement settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.settings.throughput = Some(t);
        self
    }

    /// Sets the number of timing samples taken.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up = d;
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.settings.run(&full, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Prevents the optimiser from discarding `value` (re-export convenience).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("PP_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Bytes(64));
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.finish();
    }
}
