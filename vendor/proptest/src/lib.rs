//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * `any::<T>()` for the integer primitives and `bool`;
//! * integer ranges (`0usize..512`) as strategies;
//! * [`collection::vec`] and [`Strategy::prop_map`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, by design: cases are generated from a
//! seed derived from the test's full path (override with the
//! `PROPTEST_SEED` environment variable), and failing inputs are reported
//! but **not shrunk**. Failures print the exact inputs, which together with
//! the deterministic seed makes reproduction trivial.

pub mod strategy {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// The RNG handed to strategies when generating a case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        rng: SmallRng,
    }

    impl TestRng {
        /// Derives a deterministic RNG for the named test, honouring the
        /// `PROPTEST_SEED` environment variable when set.
        pub fn for_test(name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(0x9702_2020_c0de_5eed);
            let mut h: u64 = 0xcbf29ce484222325 ^ base;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { rng: SmallRng::seed_from_u64(h) }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.rng.gen()
        }

        /// Uniform integer in `[lo, hi)`.
        pub fn gen_usize(&mut self, lo: usize, hi: usize) -> usize {
            if lo >= hi {
                return lo;
            }
            self.rng.gen_range(lo..hi)
        }
    }

    /// A generator of test-case values.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value: Debug;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty => $shift:expr),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    (rng.next_u64() >> $shift) as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8 => 56, u16 => 48, u32 => 32, u64 => 0, usize => 0);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite, roughly unit-scale values: property tests here use
            // f64 inputs as probabilities/fractions.
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Debug for Any<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("any")
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let raw = rng.next_u64() as u128;
                    self.start.wrapping_add(((raw * span) >> 64) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    impl<S: Strategy> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (*self).new_value(rng)
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length lies in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S>
    where
        S::Value: Debug,
    {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_usize(self.len.start, self.len.end);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property: carries the formatted assertion message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let __config = $config;
            let __name = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::strategy::TestRng::for_test(__name);
            for __case in 0..__config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&::std::format!("{:?}; ", &$arg));
                    )+
                    __s
                };
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "property {} failed at case {}/{}:\n  {}\n  inputs: {}\n  (no shrinking; rerun with PROPTEST_SEED to vary cases)",
                        __name, __case + 1, __config.cases, __e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

/// `assert!` that reports the failing property inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports the failing property inputs.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// `assert_ne!` that reports the failing property inputs.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($left), stringify!($right), ::std::format!($($fmt)+), __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 10u64..20, y in 0usize..4) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_lengths(data in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!(data.len() >= 3 && data.len() < 7);
        }

        #[test]
        fn prop_map_applies(v in (0u32..100).prop_map(|x| x * 2)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 200);
        }
    }

    #[test]
    fn failure_reports_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                fn always_fails(x in 0u8..4) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("inputs: x ="), "message: {msg}");
    }
}
