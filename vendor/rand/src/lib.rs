//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen::<u64>()`, `gen::<f64>()` and `gen_range(lo..hi)`.
//!
//! `SmallRng` is xoshiro256++ (the same family the real `rand::rngs::SmallRng`
//! uses on 64-bit targets), seeded through SplitMix64 as recommended by the
//! xoshiro authors. Stream values are *not* guaranteed to match the real
//! crate's output bit-for-bit — callers must only rely on determinism for a
//! fixed seed, which the netsim regression tests do.

/// A source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// RNGs that can be constructed from an integer seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Maps 64 uniform random bits onto `Self`.
    fn from_raw(raw: u64) -> Self;
}

impl Standard for u64 {
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for u16 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 56) as u8
    }
}

impl Standard for bool {
    fn from_raw(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_raw(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_raw(raw: u64) -> Self {
        (raw >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`; `lo < hi` is the caller's contract.
    fn sample_range(rng_raw: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range(rng_raw: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                debug_assert!(span > 0);
                // Widening multiply: unbiased enough for simulation purposes
                // (bias is < 2^-64 relative for any span that fits in u64).
                let raw = rng_raw() as u128;
                lo.wrapping_add(((raw * span) >> 64) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        let mut raw = || self.next_u64();
        T::sample_range(&mut raw, range.start, range.end)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: u64 = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in a small range hit");
    }
}
