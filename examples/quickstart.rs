//! Quickstart: park a payload, bounce the header through a pretend NF,
//! and merge it back — the whole PayloadPark lifecycle in one file.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use payloadpark::program::build_switch;
use payloadpark::{ParkConfig, PipeControl};
use pp_packet::builder::{TcpPacketBuilder, UdpPacketBuilder};
use pp_packet::parse::ParsedPacket;
use pp_packet::{MacAddr, Packet};
use pp_rmt::chip::ChipProfile;
use pp_rmt::PortId;

fn main() {
    // A PayloadPark deployment on pipe 0: traffic generator on ports 0-1,
    // the NF server on port 2, 4096 lookup-table slots, expiry threshold 1.
    let cfg = ParkConfig::single_server(ChipProfile::default(), vec![0, 1], 2, 4096);
    let (mut switch, handles) = build_switch(&cfg).expect("config fits the chip");
    let control = PipeControl::new(handles[0].clone());

    // L2 forwarding: the server's MAC lives on port 2, the sink's on 3.
    let server_mac = MacAddr::from_index(100);
    let sink_mac = MacAddr::from_index(200);
    switch.l2_add(server_mac, PortId(2));
    switch.l2_add(sink_mac, PortId(3));

    // A 512-byte UDP packet from the generator.
    let pkt = UdpPacketBuilder::new()
        .dst_mac(server_mac)
        .total_size(512, /* payload pattern seed */ 7)
        .build();
    println!("in : {} bytes toward the NF server", pkt.len());

    // --- Split: the switch parks 160 payload bytes and forwards headers.
    let out = switch.process(pkt.bytes(), PortId(0), 0);
    let to_server = &out[0];
    println!(
        "out: {} bytes on the switch->server link (160 parked, 7-byte tag added)",
        to_server.bytes.len()
    );
    assert_eq!(to_server.bytes.len(), 512 - 160 + 7);

    // --- The "NF": a shallow function may rewrite headers, never payload.
    let mut processed = Packet::new(to_server.bytes.clone());
    processed.bytes_mut()[0..6].copy_from_slice(&sink_mac.0); // route to sink

    // --- Merge: the switch re-attaches the parked payload.
    let back = switch.process(processed.bytes(), PortId(2), 0);
    let to_sink = &back[0];
    println!("out: {} bytes delivered to the sink (payload restored)", to_sink.bytes.len());
    assert_eq!(to_sink.bytes.len(), 512);

    // The payload is byte-identical to what was sent.
    let original = ParsedPacket::parse(pkt.bytes()).unwrap();
    let restored = ParsedPacket::parse(&to_sink.bytes).unwrap();
    assert_eq!(original.payload(), restored.payload());
    println!("payload restored byte-for-byte ✓");

    // The shim is protocol-agnostic: a TCP segment parks the same way
    // (only the IPv4 total-length moves — TCP has no length field), and
    // the merged packet still carries valid IPv4 + TCP checksums.
    let tcp = TcpPacketBuilder::new().dst_mac(server_mac).tcp_seq(1).total_size(512, 8).build();
    let out = switch.process(tcp.bytes(), PortId(0), 1);
    let mut at_server = out[0].bytes.clone();
    at_server[0..6].copy_from_slice(&sink_mac.0);
    let back = switch.process(&at_server, PortId(2), 1);
    assert_eq!(back[0].bytes.len(), 512);
    assert!(ParsedPacket::parse(&back[0].bytes).unwrap().verify_checksums());
    println!("TCP segment parked and restored with valid checksums ✓");

    // Control-plane counters (paper §5).
    let c = control.counters(&switch);
    println!(
        "counters: splits={} merges={} premature_evictions={}",
        c.splits, c.merges, c.premature_evictions
    );
    assert_eq!(c.splits, 2, "one UDP + one TCP split");
    assert!(c.functionally_equivalent());
}
