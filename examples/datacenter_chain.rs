//! The paper's headline scenario (Fig. 7): an enterprise-datacenter
//! workload through a Firewall → NAT → Maglev-LB chain on a 10 GE NF
//! server, baseline vs PayloadPark.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example datacenter_chain
//! ```

use pp_harness::testbed::{run, ChainSpec, DeployMode, FrameworkKind, ParkParams, TestbedConfig};
use pp_netsim::time::SimDuration;
use pp_nf::server::ServerProfile;
use pp_trafficgen::gen::{SizeModel, TrafficMix};

fn main() {
    let mut cfg = TestbedConfig {
        nic_gbps: 10.0,
        rate_gbps: 0.0, // set per run below
        sizes: SizeModel::Enterprise,
        mix: TrafficMix::UdpOnly,
        duration: SimDuration::from_millis(20),
        chain: ChainSpec::FwNatLb { fw_rules: 20 },
        framework: FrameworkKind::NetBricks,
        server: ServerProfile::default(),
        flows: 128,
        seed: 7,
        mode: DeployMode::Baseline,
        ..Default::default()
    };

    println!("FW -> NAT -> LB on NetBricks, 10 GE, enterprise workload (mean 882 B)");
    println!();
    println!(
        "{:>10} {:>16} {:>16} {:>14} {:>14}",
        "send Gbps", "base goodput", "park goodput", "base lat us", "park lat us"
    );
    for rate in [2.0, 6.0, 9.0, 10.0, 11.0, 12.0] {
        cfg.rate_gbps = rate;
        cfg.mode = DeployMode::Baseline;
        let base = run(&cfg);
        cfg.mode = DeployMode::PayloadPark(ParkParams::default());
        let park = run(&cfg);
        println!(
            "{:>10.1} {:>16.4} {:>16.4} {:>14.1} {:>14.1}",
            rate, base.goodput_gbps, park.goodput_gbps, base.avg_latency_us, park.avg_latency_us
        );
    }
    println!();
    println!(
        "Past the 10 GE link's saturation the baseline goodput is capped and its \
         latency spikes, while PayloadPark keeps growing — the Fig. 7 result."
    );
}
