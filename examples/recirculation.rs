//! Recirculation (paper §6.2.5): park 384 bytes instead of 160 by striping
//! extra payload blocks through a second pipe, roughly doubling the
//! goodput gain on the datacenter workload.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example recirculation
//! ```

use pp_harness::testbed::{run, ChainSpec, DeployMode, FrameworkKind, ParkParams, TestbedConfig};
use pp_netsim::time::SimDuration;
use pp_nf::server::ServerProfile;
use pp_trafficgen::gen::{SizeModel, TrafficMix};

fn main() {
    let mut cfg = TestbedConfig {
        nic_gbps: 10.0,
        rate_gbps: 12.5,
        sizes: SizeModel::Enterprise,
        mix: TrafficMix::UdpOnly,
        duration: SimDuration::from_millis(20),
        chain: ChainSpec::FwNatLb { fw_rules: 20 },
        framework: FrameworkKind::NetBricks,
        server: ServerProfile::default(),
        flows: 128,
        seed: 7,
        mode: DeployMode::Baseline,
        ..Default::default()
    };

    let base = run(&cfg);

    cfg.mode = DeployMode::PayloadPark(ParkParams::default());
    let park160 = run(&cfg);

    cfg.mode = DeployMode::PayloadPark(ParkParams { recirculation: true, ..Default::default() });
    let park384 = run(&cfg);

    println!("Enterprise workload at 12.5 Gbps send over a 10 GE server link:");
    println!();
    let gain =
        |r: &pp_harness::testbed::RunReport| (r.goodput_gbps / base.goodput_gbps - 1.0) * 100.0;
    println!(
        "  baseline              goodput {:.4} Gbps   pcie {:>6.2} Gbps",
        base.goodput_gbps, base.pcie_gbps
    );
    println!(
        "  payloadpark 160 B     goodput {:.4} Gbps   pcie {:>6.2} Gbps   (+{:.1}%)",
        park160.goodput_gbps,
        park160.pcie_gbps,
        gain(&park160)
    );
    println!(
        "  payloadpark 384 B     goodput {:.4} Gbps   pcie {:>6.2} Gbps   (+{:.1}%)",
        park384.goodput_gbps,
        park384.pcie_gbps,
        gain(&park384)
    );
    println!();
    let c = park384.counters.unwrap();
    println!(
        "  recirculation counters: splits={} merges={} (switch recirculated {} passes)",
        c.splits, c.merges, park384.switch_stats.recirculations
    );
    println!("\nThe 384-byte variant roughly doubles the 160-byte gain — the Fig. 13 result.");
}
