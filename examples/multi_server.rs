//! Multiple NF servers sharing one pipe via static memory slicing
//! (paper §6.2.3): each server gets its own slice of the lookup table, so
//! a heavy-hitting neighbour cannot evict another tenant's payloads.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example multi_server
//! ```

use pp_harness::multiserver::{run_pipe, MultiServerConfig};
use pp_harness::testbed::{DeployMode, ParkParams};
use pp_netsim::time::SimDuration;

fn main() {
    let mut cfg = MultiServerConfig {
        rate_gbps: 5.0,
        duration: SimDuration::from_millis(15),
        ..Default::default()
    };

    cfg.mode = DeployMode::Baseline;
    let base = run_pipe(&cfg);

    cfg.mode = DeployMode::PayloadPark(ParkParams {
        sram_fraction: 0.40, // 40% of the pipe, split between the 2 slices
        ..Default::default()
    });
    let park = run_pipe(&cfg);

    println!("Two NF servers (MAC swap, 384 B packets) sharing one pipe, 5 Gbps each:");
    println!();
    println!(
        "{:>8} {:>16} {:>16} {:>14} {:>14} {:>12}",
        "server", "base goodput", "park goodput", "base lat us", "park lat us", "pcie saved"
    );
    for s in 0..2 {
        let saved = (1.0 - park[s].pcie_gbps / base[s].pcie_gbps) * 100.0;
        println!(
            "{:>8} {:>16.4} {:>16.4} {:>14.2} {:>14.2} {:>11.1}%",
            s + 1,
            base[s].goodput_gbps,
            park[s].goodput_gbps,
            base[s].avg_latency_us,
            park[s].avg_latency_us,
            saved
        );
    }
    let c = park[0].counters.unwrap();
    println!();
    println!(
        "pipe counters: splits={} merges={} premature_evictions={}",
        c.splits, c.merges, c.premature_evictions
    );
    println!(
        "\nBoth tenants split and merge through disjoint slices of the same pipe's\n\
         lookup table — the isolation behind the paper's 8-server result (Figs. 10-11)."
    );
}
