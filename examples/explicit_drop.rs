//! Explicit Drop notifications (paper §6.2.4): when the firewall drops a
//! packet, its parked payload sits in switch memory until the evictor ages
//! it out. The 50-line framework patch notifies the switch immediately,
//! letting a conservative expiry threshold behave like an aggressive one.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example explicit_drop
//! ```

use pp_harness::testbed::{run, ChainSpec, DeployMode, FrameworkKind, ParkParams, TestbedConfig};
use pp_netsim::time::SimDuration;
use pp_nf::server::ServerProfile;
use pp_trafficgen::gen::{SizeModel, TrafficMix};

fn main() {
    let base_cfg = TestbedConfig {
        nic_gbps: 40.0,
        rate_gbps: 6.0,
        sizes: SizeModel::Enterprise,
        mix: TrafficMix::UdpOnly,
        duration: SimDuration::from_millis(15),
        // The firewall blacklists 40% of the generator's flows.
        chain: ChainSpec::FwNatBlacklist { blocked_pct: 40 },
        framework: FrameworkKind::OpenNetVm,
        server: ServerProfile::default(),
        flows: 128,
        seed: 9,
        mode: DeployMode::Baseline,
        ..Default::default()
    };

    println!("FW(40% drops) -> NAT, enterprise workload, 6 Gbps send:");
    println!();
    for (label, expiry, explicit) in [
        ("evictor only, EXP=2 (aggressive)", 2u16, false),
        ("evictor only, EXP=10 (conservative)", 10, false),
        ("explicit drops + EXP=10", 10, true),
    ] {
        let mut cfg = base_cfg.clone();
        cfg.mode = DeployMode::PayloadPark(ParkParams {
            expiry,
            explicit_drop: explicit,
            ..Default::default()
        });
        let r = run(&cfg);
        let c = r.counters.unwrap();
        println!("  {label}");
        println!(
            "    splits={} merges={} explicit_drops={} evictions={} \
             splits_disabled_occupied={}",
            c.splits, c.merges, c.explicit_drops, c.evictions, c.disabled_occupied
        );
    }
    println!();
    println!(
        "With explicit notifications the dead payloads are reclaimed instantly: no\n\
         split is ever refused (splits_disabled_occupied drops to zero) and more\n\
         packets get parked — the paper's Fig. 12 conclusion that Explicit+EXP=10\n\
         performs like an aggressive eviction policy, at zero eviction risk."
    );
}
