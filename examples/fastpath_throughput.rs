//! Emulator throughput with the `pp_fastpath` engine: a 4-worker sharded
//! run over the enterprise packet-size mix, against the scalar pipeline.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fastpath_throughput
//! ```
//!
//! Each worker owns one §6.2.4 memory slice (its own circular buffers)
//! and executes Split → MAC-swap NF → Merge shard-locally over packet
//! batches. Speedup over the scalar baseline scales with the host's core
//! count; output counters prove the wide run did the same work.

use pp_fastpath::{EgressMeter, EngineConfig, SlicedTestbed};
use pp_netsim::time::SimDuration;
use std::time::Instant;

const WORKERS: usize = 4;

fn main() {
    let tb = SlicedTestbed::new(WORKERS, 4096);
    let wave = tb.enterprise_wave(7, SimDuration::from_millis(10));
    let offered: u64 = wave.iter().map(|p| p.bytes.len() as u64).sum();
    println!(
        "{} enterprise packets ({:.1} MB wire), {} slices, Split -> MAC-swap NF -> Merge",
        wave.len(),
        offered as f64 / 1e6,
        WORKERS,
    );
    println!();

    // Scalar reference: one packet at a time through one switch.
    let (mut scalar, _) = tb.build_scalar();
    let start = Instant::now();
    let merged = tb.scalar_roundtrip(&mut scalar, &wave);
    let scalar_wall = start.elapsed();
    let mut meter = EgressMeter::new();
    meter.record(merged.len() as u64, merged.iter().map(|o| o.bytes.len() as u64).sum());
    let scalar_pps = wave.len() as f64 / scalar_wall.as_secs_f64();
    println!(
        "scalar pipeline : {:>9.0} pkts/s   goodput {:>6.3} Gbit/s",
        scalar_pps,
        meter.gbps(scalar_wall),
    );

    // The engine: one worker per slice, batched, fused round trip.
    let mut engine = tb.build_engine(EngineConfig::default()).unwrap();
    let start = Instant::now();
    let merged = engine.process_roundtrip(wave.clone(), tb.sink_mac());
    let engine_wall = start.elapsed();
    let mut meter = EgressMeter::new();
    meter.record(merged.packets() as u64, merged.wire_bytes() as u64);
    let engine_pps = wave.len() as f64 / engine_wall.as_secs_f64();
    println!(
        "engine, {WORKERS} shards: {:>9.0} pkts/s   goodput {:>6.3} Gbit/s   ({:.2}x scalar)",
        engine_pps,
        meter.gbps(engine_wall),
        engine_pps / scalar_pps,
    );

    let counters = engine.counters();
    println!();
    println!(
        "engine counters : {} splits, {} merges, {} too-small, 0 premature required -> {}",
        counters.splits,
        counters.merges,
        counters.disabled_small_payload,
        if counters.functionally_equivalent() { "functionally equivalent" } else { "VIOLATION" },
    );
    assert_eq!(merged.packets(), wave.len(), "every packet must reach the sink");
}
